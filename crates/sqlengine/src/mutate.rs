//! The versioned snapshot commit path: `INSERT`/`UPDATE`/`DELETE` planned
//! against an immutable [`Database`] snapshot and applied copy-on-write.
//!
//! A commit has two halves, deliberately separated so the differential
//! oracle isolates the half that can silently rot:
//!
//! 1. **Planning** ([`plan_mutation`]): evaluate the statement against the
//!    *current* snapshot — which rows match the `WHERE`, what the new row
//!    contents are — producing a [`PlannedMutation`] of plain positions and
//!    rows. Planning runs through the ordinary expression executor, so
//!    `WHERE` predicates may contain subqueries against any table, and
//!    `UPDATE` assignment right-hand sides see the pre-update row (standard
//!    SQL semantics).
//! 2. **Application**: the same planned mutation is applied by two
//!    independent implementations. [`commit_statement`] is the production
//!    path — clone the database (cheap: tables are [`std::sync::Arc`]
//!    shared), copy-on-write only the touched table, and maintain its PK
//!    index, columnar chunks, and BM25 text indexes *incrementally*.
//!    [`commit_statement_rebuild`] is the naive reference — materialize the
//!    post-mutation rows and rebuild a fresh database from the schema, so
//!    every index and chunk is built from scratch. `snapshot_props.rs`
//!    asserts the two are observably identical (rows, probes, chunks,
//!    searches, query results in all three plan modes) on randomized
//!    workloads.
//!
//! Because both paths share one planning step, any divergence the oracle
//! finds is necessarily in the incremental maintenance machinery — the part
//! this PR's tests exist to keep honest.

use crate::ast::Statement;
use crate::error::{SqlError, SqlResult};
use crate::exec::{Executor, Scope};
use crate::plan::{ColMeta, PlanCache, PlanMode};
use crate::result::ResultSet;
use crate::schema::{ColumnDef, ForeignKey, TableSchema};
use crate::storage::{Database, Row};
use crate::value::Value;

/// Which kind of mutation a commit applied, for callers that meter writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    Insert,
    Update,
    Delete,
    CreateTable,
}

impl MutationKind {
    /// Stable lowercase label (metrics tag value).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::Insert => "insert",
            MutationKind::Update => "update",
            MutationKind::Delete => "delete",
            MutationKind::CreateTable => "create_table",
        }
    }
}

/// The result of committing one mutation statement against a snapshot.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The new snapshot: the input database with the mutation applied and
    /// the version epoch bumped. The input snapshot is untouched.
    pub db: Database,
    /// The mutated table, lowercased (empty only for zero-row no-ops on
    /// `CREATE TABLE`-free statements — never; always set).
    pub table: String,
    pub kind: MutationKind,
    /// Rows inserted, updated, or deleted (0 for `CREATE TABLE`).
    pub rows_affected: usize,
    /// The statement's client-visible result (`rows_inserted` etc.),
    /// identical to what [`crate::execute_statement`] returns.
    pub result: ResultSet,
}

/// A mutation resolved to plain positions and rows — everything expression
/// evaluation already decided, nothing index maintenance still has to.
#[derive(Debug, Clone)]
pub enum PlannedMutation {
    Insert { table: String, rows: Vec<Row> },
    Update { table: String, changes: Vec<(usize, Row)> },
    Delete { table: String, positions: Vec<usize> },
    CreateTable { schema: TableSchema, foreign_keys: Vec<ForeignKey> },
}

/// Cheap syntactic write detection for admission control: true when the
/// first keyword of `sql` starts a mutation statement. Serving layers use
/// this to route statements before parsing.
pub fn is_write_statement(sql: &str) -> bool {
    let first = sql.split_whitespace().next().unwrap_or("");
    ["INSERT", "UPDATE", "DELETE", "CREATE"].iter().any(|k| first.eq_ignore_ascii_case(k))
}

/// The dependency set of any statement: every base table it can read or
/// write, lowercased, sorted, deduplicated. This is what version-keyed
/// caches fingerprint (see [`Database::dependency_fingerprint`]).
pub fn statement_dependencies(stmt: &Statement) -> Vec<String> {
    match stmt {
        Statement::Select(s) => s.all_referenced_tables(),
        Statement::Explain(e) => e.query.all_referenced_tables(),
        Statement::Update(u) => u.all_referenced_tables(),
        Statement::Delete(d) => d.all_referenced_tables(),
        Statement::Insert(i) => vec![i.table.to_ascii_lowercase()],
        Statement::CreateTable(c) => vec![c.name.to_ascii_lowercase()],
    }
}

/// Resolves a parsed mutation statement against a snapshot into plain
/// positions and rows. Read-only: evaluation runs against `db`, nothing is
/// mutated. `SELECT`/`EXPLAIN` are rejected.
pub fn plan_mutation(db: &Database, stmt: &Statement) -> SqlResult<PlannedMutation> {
    match stmt {
        Statement::Insert(ins) => {
            let schema = db.table(&ins.table)?.schema.clone();
            let positions: Vec<usize> = if ins.columns.is_empty() {
                (0..schema.columns.len()).collect()
            } else {
                ins.columns
                    .iter()
                    .map(|c| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", ins.table, c)))
                    })
                    .collect::<SqlResult<Vec<_>>>()?
            };
            let mut rows = Vec::with_capacity(ins.rows.len());
            for row_exprs in &ins.rows {
                if row_exprs.len() != positions.len() {
                    return Err(SqlError::Schema("INSERT arity mismatch".into()));
                }
                let mut row = vec![Value::Null; schema.columns.len()];
                let mut exec = Executor::new(db, PlanMode::default(), PlanCache::default());
                let scope = Scope { cols: &[], row: &[], parent: None };
                for (expr, &pos) in row_exprs.iter().zip(&positions) {
                    row[pos] = exec.eval(expr, &scope, None)?;
                }
                rows.push(row);
            }
            Ok(PlannedMutation::Insert { table: ins.table.to_ascii_lowercase(), rows })
        }
        Statement::Update(upd) => {
            let table = db.table(&upd.table)?;
            let cols = table_scope_cols(&upd.table, &table.schema);
            let assigned: Vec<usize> = upd
                .assignments
                .iter()
                .map(|(c, _)| {
                    table
                        .schema
                        .column_index(c)
                        .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", upd.table, c)))
                })
                .collect::<SqlResult<Vec<_>>>()?;
            let mut exec = Executor::new(db, PlanMode::default(), PlanCache::default());
            let mut changes = Vec::new();
            for (pos, row) in table.rows().iter().enumerate() {
                let scope = Scope { cols: &cols, row, parent: None };
                if let Some(pred) = &upd.where_clause {
                    if !exec.eval(pred, &scope, None)?.to_truth().is_true() {
                        continue;
                    }
                }
                // Every RHS sees the pre-update row (standard SQL: SET a =
                // b, b = a swaps).
                let mut new_row = row.clone();
                for (&col, (_, expr)) in assigned.iter().zip(&upd.assignments) {
                    new_row[col] = exec.eval(expr, &scope, None)?;
                }
                changes.push((pos, new_row));
            }
            Ok(PlannedMutation::Update { table: upd.table.to_ascii_lowercase(), changes })
        }
        Statement::Delete(del) => {
            let table = db.table(&del.table)?;
            let cols = table_scope_cols(&del.table, &table.schema);
            let mut exec = Executor::new(db, PlanMode::default(), PlanCache::default());
            let mut positions = Vec::new();
            for (pos, row) in table.rows().iter().enumerate() {
                let keep = match &del.where_clause {
                    Some(pred) => {
                        let scope = Scope { cols: &cols, row, parent: None };
                        exec.eval(pred, &scope, None)?.to_truth().is_true()
                    }
                    None => true,
                };
                if keep {
                    positions.push(pos);
                }
            }
            Ok(PlannedMutation::Delete { table: del.table.to_ascii_lowercase(), positions })
        }
        Statement::CreateTable(ct) => {
            let columns: Vec<ColumnDef> = ct
                .columns
                .iter()
                .map(|(name, ty, pk)| {
                    let mut c = ColumnDef::new(name.clone(), *ty);
                    if *pk {
                        c = c.primary_key();
                    }
                    c
                })
                .collect();
            let foreign_keys = ct
                .foreign_keys
                .iter()
                .map(|(from_col, to_table, to_col)| ForeignKey {
                    from_table: ct.name.clone(),
                    from_column: from_col.clone(),
                    to_table: to_table.clone(),
                    to_column: to_col.clone(),
                })
                .collect();
            Ok(PlannedMutation::CreateTable {
                schema: TableSchema::new(ct.name.clone(), columns),
                foreign_keys,
            })
        }
        Statement::Select(_) | Statement::Explain(_) => {
            Err(SqlError::Execution("not a mutation statement".into()))
        }
    }
}

/// Column metadata for evaluating expressions against one table's rows:
/// every column qualified by the (lowercased) table name, as a scan of that
/// table would expose them.
fn table_scope_cols(table: &str, schema: &TableSchema) -> Vec<ColMeta> {
    let quals = vec![table.to_ascii_lowercase()];
    schema.columns.iter().map(|c| ColMeta { quals: quals.clone(), name: c.name.clone() }).collect()
}

/// Applies a planned mutation to a snapshot **incrementally**: the database
/// is cloned (table handles shared), only the touched table is
/// copy-on-write cloned, and its PK index, columnar chunks, and text
/// indexes are maintained in place rather than rebuilt. This is the
/// production commit path.
pub fn apply_planned(db: &Database, planned: PlannedMutation) -> SqlResult<CommitOutcome> {
    let mut next = db.clone();
    next.bump_version();
    let (table, kind, rows_affected) = match planned {
        PlannedMutation::Insert { table, rows } => {
            let n = rows.len();
            if n > 0 {
                let t = next.table_mut(&table)?;
                for row in rows {
                    t.insert(row)?;
                }
            } else {
                // Statement-level validation only; nothing to copy.
                next.table(&table)?;
            }
            (table, MutationKind::Insert, n)
        }
        PlannedMutation::Update { table, changes } => {
            let n = changes.len();
            if n > 0 {
                next.table_mut(&table)?.update_rows(changes)?;
            } else {
                next.table(&table)?;
            }
            (table, MutationKind::Update, n)
        }
        PlannedMutation::Delete { table, positions } => {
            let n = positions.len();
            if n > 0 {
                next.table_mut(&table)?.delete_rows(&positions)?;
            } else {
                next.table(&table)?;
            }
            (table, MutationKind::Delete, n)
        }
        PlannedMutation::CreateTable { schema, foreign_keys } => {
            let name = schema.name.to_ascii_lowercase();
            next.create_table(schema)?;
            for fk in foreign_keys {
                next.add_foreign_key(fk);
            }
            (name, MutationKind::CreateTable, 0)
        }
    };
    let result = mutation_result(kind, rows_affected);
    Ok(CommitOutcome { db: next, table, kind, rows_affected, result })
}

/// Applies a planned mutation by **rebuilding everything**: materialize the
/// post-mutation row stores, then construct a fresh database from the
/// schema and re-insert every row of every table, so each PK index,
/// columnar chunk, and text index is built from scratch with no incremental
/// step anywhere. Deliberately naive — this is the reference implementation
/// the differential oracle compares [`apply_planned`] against.
pub fn apply_planned_rebuild(db: &Database, planned: PlannedMutation) -> SqlResult<CommitOutcome> {
    // Resolve the post-mutation rows per table, in plain vectors.
    let mut schema = db.schema().clone();
    let mut contents: Vec<(String, Vec<Row>)> = db
        .schema()
        .tables
        .iter()
        .map(|t| (t.name.clone(), db.table(&t.name).map(|t| t.rows().to_vec())))
        .map(|(n, r)| r.map(|rows| (n, rows)))
        .collect::<SqlResult<Vec<_>>>()?;
    let (table, kind, rows_affected) = match planned {
        PlannedMutation::Insert { table, rows } => {
            let n = rows.len();
            let slot = find_table(&mut contents, &table)?;
            slot.extend(rows);
            (table, MutationKind::Insert, n)
        }
        PlannedMutation::Update { table, changes } => {
            let n = changes.len();
            let slot = find_table(&mut contents, &table)?;
            for (pos, row) in changes {
                slot[pos] = row;
            }
            (table, MutationKind::Update, n)
        }
        PlannedMutation::Delete { table, positions } => {
            let n = positions.len();
            let slot = find_table(&mut contents, &table)?;
            let mut i = 0usize;
            let mut doomed = positions.iter().copied().peekable();
            slot.retain(|_| {
                let hit = doomed.peek() == Some(&i);
                if hit {
                    doomed.next();
                }
                i += 1;
                !hit
            });
            (table, MutationKind::Delete, n)
        }
        PlannedMutation::CreateTable { schema: ts, foreign_keys } => {
            let name = ts.name.to_ascii_lowercase();
            schema.add_table(ts.clone())?;
            for fk in foreign_keys {
                schema.add_foreign_key(fk);
            }
            contents.push((ts.name, Vec::new()));
            (name, MutationKind::CreateTable, 0)
        }
    };
    let mut next = Database::from_schema(schema);
    for (name, rows) in contents {
        next.insert_many(&name, rows)?;
    }
    // Match the production path's version arithmetic so the two snapshots
    // are version-observably identical too.
    for _ in 0..db.version() + 1 {
        next.bump_version();
    }
    let result = mutation_result(kind, rows_affected);
    Ok(CommitOutcome { db: next, table, kind, rows_affected, result })
}

fn find_table<'a>(
    contents: &'a mut [(String, Vec<Row>)],
    table: &str,
) -> SqlResult<&'a mut Vec<Row>> {
    contents
        .iter_mut()
        .find(|(n, _)| n.eq_ignore_ascii_case(table))
        .map(|(_, rows)| rows)
        .ok_or_else(|| SqlError::UnknownTable(table.to_string()))
}

fn mutation_result(kind: MutationKind, rows_affected: usize) -> ResultSet {
    let header = match kind {
        MutationKind::Insert => "rows_inserted",
        MutationKind::Update => "rows_updated",
        MutationKind::Delete => "rows_deleted",
        MutationKind::CreateTable => {
            return ResultSet::new(vec![]);
        }
    };
    let mut rs = ResultSet::new(vec![header.into()]);
    rs.rows.push(vec![Value::Integer(rows_affected as i64)]);
    rs
}

/// Parses and commits one mutation statement against a snapshot through the
/// incremental copy-on-write path. The input snapshot is untouched; the
/// outcome carries the new one.
pub fn commit_statement(db: &Database, sql: &str) -> SqlResult<CommitOutcome> {
    let stmt = crate::parser::parse_statement(sql)?;
    apply_planned(db, plan_mutation(db, &stmt)?)
}

/// Parses and commits one mutation statement through the rebuild-everything
/// reference path. Planning is shared with [`commit_statement`], so any
/// observable difference between the two outcomes is a defect in the
/// incremental maintenance machinery.
pub fn commit_statement_rebuild(db: &Database, sql: &str) -> SqlResult<CommitOutcome> {
    let stmt = crate::parser::parse_statement(sql)?;
    apply_planned_rebuild(db, plan_mutation(db, &stmt)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::{execute, ColumnDef};

    fn db() -> Database {
        let mut db = Database::new("m");
        db.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("v", DataType::Integer),
            ],
        ))
        .unwrap();
        for i in 0..10i64 {
            db.insert("t", vec![i.into(), format!("row{i}").into(), (i * 10).into()]).unwrap();
        }
        db
    }

    #[test]
    fn update_assignments_see_the_pre_update_row() {
        let db = db();
        let out = commit_statement(&db, "UPDATE t SET id = v, v = id WHERE id = 3").unwrap();
        assert_eq!(out.rows_affected, 1);
        let rows = execute(&out.db, "SELECT id, v FROM t WHERE name = 'row3'").unwrap();
        assert_eq!(rows.rows[0], vec![Value::Integer(30), Value::Integer(3)]);
        // The input snapshot is untouched.
        let rows = execute(&db, "SELECT id, v FROM t WHERE name = 'row3'").unwrap();
        assert_eq!(rows.rows[0], vec![Value::Integer(3), Value::Integer(30)]);
    }

    #[test]
    fn delete_with_subquery_predicate() {
        let db = db();
        let out = commit_statement(&db, "DELETE FROM t WHERE v > (SELECT AVG(v) FROM t)").unwrap();
        assert_eq!(out.rows_affected, 5);
        assert_eq!(out.db.table("t").unwrap().len(), 5);
        assert_eq!(db.table("t").unwrap().len(), 10);
    }

    #[test]
    fn commit_cow_clones_only_the_touched_table() {
        let mut db = db();
        db.create_table(TableSchema::new(
            "u",
            vec![ColumnDef::new("id", DataType::Integer).primary_key()],
        ))
        .unwrap();
        let out = commit_statement(&db, "INSERT INTO t VALUES (99, 'x', 0)").unwrap();
        assert!(
            std::sync::Arc::ptr_eq(db.table_arc("u").unwrap(), out.db.table_arc("u").unwrap()),
            "untouched table is shared between snapshots"
        );
        assert!(
            !std::sync::Arc::ptr_eq(db.table_arc("t").unwrap(), out.db.table_arc("t").unwrap()),
            "touched table was copy-on-write cloned"
        );
        assert_eq!(out.db.version(), db.version() + 1);
    }

    #[test]
    fn zero_row_mutations_share_every_table() {
        let db = db();
        let out = commit_statement(&db, "DELETE FROM t WHERE id = 12345").unwrap();
        assert_eq!(out.rows_affected, 0);
        assert!(std::sync::Arc::ptr_eq(db.table_arc("t").unwrap(), out.db.table_arc("t").unwrap()));
    }

    #[test]
    fn write_detection_is_syntactic() {
        assert!(is_write_statement("  insert into t values (1)"));
        assert!(is_write_statement("UPDATE t SET a = 1"));
        assert!(is_write_statement("delete from t"));
        assert!(is_write_statement("CREATE TABLE x (a INTEGER)"));
        assert!(!is_write_statement("SELECT * FROM t"));
        assert!(!is_write_statement("EXPLAIN SELECT 1"));
        assert!(!is_write_statement(""));
    }

    #[test]
    fn statement_dependencies_recurse_into_subqueries() {
        let stmt = crate::parse_statement(
            "SELECT a.id FROM t AS a WHERE a.v > (SELECT AVG(v) FROM u) \
             AND EXISTS (SELECT 1 FROM w WHERE w.id = a.id)",
        )
        .unwrap();
        assert_eq!(statement_dependencies(&stmt), vec!["t", "u", "w"]);
        let stmt = crate::parse_statement("UPDATE t SET v = (SELECT MAX(v) FROM u)").unwrap();
        assert_eq!(statement_dependencies(&stmt), vec!["t", "u"]);
        let stmt = crate::parse_statement("DELETE FROM t WHERE id IN (SELECT id FROM u)").unwrap();
        assert_eq!(statement_dependencies(&stmt), vec!["t", "u"]);
    }

    #[test]
    fn rebuild_reference_matches_incremental_on_a_smoke_case() {
        let db = db();
        for sql in [
            "INSERT INTO t VALUES (100, 'new', 1000)",
            "UPDATE t SET name = 'renamed' WHERE id < 3",
            "DELETE FROM t WHERE v >= 70",
        ] {
            let fast = commit_statement(&db, sql).unwrap();
            let slow = commit_statement_rebuild(&db, sql).unwrap();
            assert_eq!(fast.rows_affected, slow.rows_affected, "{sql}");
            assert_eq!(fast.db.version(), slow.db.version(), "{sql}");
            assert_eq!(
                fast.db.table("t").unwrap().rows(),
                slow.db.table("t").unwrap().rows(),
                "{sql}"
            );
        }
    }
}
