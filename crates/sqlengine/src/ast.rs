//! Abstract syntax tree for the supported SQL subset.

use crate::schema::DataType;
use crate::value::{ArithOp, Value};

/// A parsed SQL statement.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    CreateTable(CreateTableStatement),
    Insert(InsertStatement),
    Update(UpdateStatement),
    Delete(DeleteStatement),
    Explain(ExplainStatement),
}

impl Statement {
    /// True for statements that mutate database state (`INSERT`, `UPDATE`,
    /// `DELETE`, `CREATE TABLE`) — the statements the snapshot commit path
    /// admits; `SELECT`/`EXPLAIN` run against a pinned snapshot instead.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Statement::Insert(_)
                | Statement::Update(_)
                | Statement::Delete(_)
                | Statement::CreateTable(_)
        )
    }
}

/// `EXPLAIN [ANALYZE] <select>`: render the physical plan for a query
/// (ANALYZE additionally executes it and annotates measured per-operator
/// profiles). See [`crate::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainStatement {
    pub analyze: bool,
    pub query: SelectStatement,
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    pub name: String,
    pub columns: Vec<(String, DataType, bool)>, // (name, type, primary key)
    pub foreign_keys: Vec<(String, String, String)>, // (column, ref table, ref column)
}

/// `INSERT INTO ... VALUES ...` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE <table> SET col = expr, ... [WHERE predicate]`.
///
/// Assignment right-hand sides and the WHERE predicate are full expressions
/// (including subqueries); every RHS is evaluated against the *pre-update*
/// row, per standard SQL semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    pub table: String,
    /// `(column, value expression)` pairs, in source order.
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM <table> [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// A full `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl SelectStatement {
    /// An empty SELECT used as a building block.
    pub fn empty() -> Self {
        SelectStatement {
            distinct: false,
            projections: Vec::new(),
            from: None,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Every table name referenced in FROM/JOIN clauses (not subqueries).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(TableRef::Named { table, .. }) = &self.from {
            out.push(table.clone());
        }
        for j in &self.joins {
            if let TableRef::Named { table, .. } = &j.table {
                out.push(table.clone());
            }
        }
        out
    }

    /// Every base-table name this query can read, *including* tables reached
    /// only through derived tables and subqueries in any clause — the
    /// dependency set version-keyed caches invalidate by. Names are
    /// lowercased, sorted, and deduplicated so the result is a stable cache
    /// key regardless of query spelling.
    pub fn all_referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        fn table_ref(r: &TableRef, out: &mut Vec<String>) {
            match r {
                TableRef::Named { table, .. } => out.push(table.to_ascii_lowercase()),
                TableRef::Derived { query, .. } => query.collect_tables(out),
            }
        }
        if let Some(f) = &self.from {
            table_ref(f, out);
        }
        for j in &self.joins {
            table_ref(&j.table, out);
            if let Some(on) = &j.on {
                on.collect_tables(out);
            }
        }
        for p in &self.projections {
            if let Projection::Expr { expr, .. } = p {
                expr.collect_tables(out);
            }
        }
        for e in self
            .where_clause
            .iter()
            .chain(&self.group_by)
            .chain(&self.having)
            .chain(self.order_by.iter().map(|o| &o.expr))
        {
            e.collect_tables(out);
        }
    }
}

impl UpdateStatement {
    /// The dependency set of the statement: the target table plus every
    /// table reachable from assignment and WHERE expressions (lowercased,
    /// sorted, deduplicated).
    pub fn all_referenced_tables(&self) -> Vec<String> {
        let mut out = vec![self.table.to_ascii_lowercase()];
        for (_, e) in &self.assignments {
            e.collect_tables(&mut out);
        }
        if let Some(w) = &self.where_clause {
            w.collect_tables(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl DeleteStatement {
    /// The dependency set of the statement: the target table plus every
    /// table reachable from the WHERE expression (lowercased, sorted,
    /// deduplicated).
    pub fn all_referenced_tables(&self) -> Vec<String> {
        let mut out = vec![self.table.to_ascii_lowercase()];
        if let Some(w) = &self.where_clause {
            w.collect_tables(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One item of the SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Wildcard,
    /// `table.*`
    TableWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM or JOIN.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base table with an optional alias.
    Named { table: String, alias: Option<String> },
    /// A derived table (subquery) with an alias.
    Derived { query: Box<SelectStatement>, alias: String },
}

impl TableRef {
    /// The name this reference is known by in the enclosing query.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { table, alias } => alias.as_deref().unwrap_or(table),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Option<Expr>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggregateKind {
    pub fn parse(name: &str) -> Option<AggregateKind> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateKind::Count),
            "SUM" => Some(AggregateKind::Sum),
            "AVG" => Some(AggregateKind::Avg),
            "MIN" => Some(AggregateKind::Min),
            "MAX" => Some(AggregateKind::Max),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            AggregateKind::Count => "COUNT",
            AggregateKind::Sum => "SUM",
            AggregateKind::Avg => "AVG",
            AggregateKind::Min => "MIN",
            AggregateKind::Max => "MAX",
        }
    }
}

/// A borrowed `(qualifier, column)` reference, as extracted from predicate
/// shapes by the planner helpers below.
pub type ColumnRefStr<'a> = (Option<&'a str>, &'a str);

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified by table/alias.
    Column {
        table: Option<String>,
        column: String,
    },
    /// Binary comparison.
    Compare {
        op: CompareOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Arithmetic.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// String concatenation (`||`).
    Concat {
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical AND / OR.
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `expr [NOT] LIKE pattern`
    Like {
        negated: bool,
        expr: Box<Expr>,
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        negated: bool,
        expr: Box<Expr>,
    },
    /// `expr [NOT] IN (list)` or `expr [NOT] IN (subquery)`
    InList {
        negated: bool,
        expr: Box<Expr>,
        list: Vec<Expr>,
    },
    InSubquery {
        negated: bool,
        expr: Box<Expr>,
        query: Box<SelectStatement>,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        negated: bool,
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `EXISTS (subquery)`
    Exists {
        negated: bool,
        query: Box<SelectStatement>,
    },
    /// Scalar subquery.
    ScalarSubquery(Box<SelectStatement>),
    /// Aggregate call.
    Aggregate {
        kind: AggregateKind,
        distinct: bool,
        arg: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Function {
        name: String,
        args: Vec<Expr>,
    },
    /// `CAST(expr AS type)`
    Cast {
        expr: Box<Expr>,
        target: DataType,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, column: name.to_string() }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { table: Some(table.to_string()), column: name.to_string() }
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Concat { left, right } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::And(a, b) | Expr::Or(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
            Expr::Function { args, .. } => args.iter().any(|e| e.contains_aggregate()),
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::Case { operand, branches, else_branch } => {
                operand.as_ref().is_some_and(|e| e.contains_aggregate())
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_branch.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }

    /// Splits a predicate into its top-level `AND` conjuncts.
    ///
    /// The physical planner works conjunct-by-conjunct: each one can be pushed
    /// below a join or matched as an equi-join key independently, because
    /// `WHERE a AND b` filters exactly the rows where both conjuncts are
    /// *true* (unknowns eliminate the row either way).
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// If this expression is an equality between two column references —
    /// the shape of an equi-join predicate like `T1.id = T2.id` — returns
    /// both sides as `(qualifier, column)` pairs.
    pub fn as_column_equality(&self) -> Option<(ColumnRefStr<'_>, ColumnRefStr<'_>)> {
        if let Expr::Compare { op: CompareOp::Eq, left, right } = self {
            if let (
                Expr::Column { table: lt, column: lc },
                Expr::Column { table: rt, column: rc },
            ) = (left.as_ref(), right.as_ref())
            {
                return Some(((lt.as_deref(), lc), (rt.as_deref(), rc)));
            }
        }
        None
    }

    /// If this expression compares a column to a literal with `=` (either
    /// operand order), returns the column reference and the literal value —
    /// the shape a primary-key point lookup needs.
    pub fn as_column_literal_equality(&self) -> Option<((Option<&str>, &str), &Value)> {
        if let Expr::Compare { op: CompareOp::Eq, left, right } = self {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column { table, column }, Expr::Literal(v))
                | (Expr::Literal(v), Expr::Column { table, column }) => {
                    return Some(((table.as_deref(), column), v));
                }
                _ => {}
            }
        }
        None
    }

    /// True if the expression (recursively) contains any subquery. The
    /// planner refuses to push such predicates into scans: correlated
    /// subqueries must be evaluated in the scope the legacy executor would
    /// have used, after the full join row is assembled.
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Concat { left, right } => left.contains_subquery() || right.contains_subquery(),
            Expr::And(a, b) | Expr::Or(a, b) => a.contains_subquery() || b.contains_subquery(),
            Expr::Not(e) | Expr::Neg(e) => e.contains_subquery(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_subquery() || pattern.contains_subquery()
            }
            Expr::IsNull { expr, .. } => expr.contains_subquery(),
            Expr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(|e| e.contains_subquery())
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_subquery() || low.contains_subquery() || high.contains_subquery()
            }
            Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|a| a.contains_subquery()),
            Expr::Function { args, .. } => args.iter().any(|e| e.contains_subquery()),
            Expr::Cast { expr, .. } => expr.contains_subquery(),
            Expr::Case { operand, branches, else_branch } => {
                operand.as_ref().is_some_and(|e| e.contains_subquery())
                    || branches.iter().any(|(w, t)| w.contains_subquery() || t.contains_subquery())
                    || else_branch.as_ref().is_some_and(|e| e.contains_subquery())
            }
        }
    }

    /// True if the expression (recursively) contains any scalar function
    /// call. Function evaluation can error (unknown name, wrong arity), so
    /// the decorrelation rewrite refuses to relocate such expressions to
    /// evaluation sites the reference executor might never reach.
    pub fn contains_function(&self) -> bool {
        match self {
            Expr::Function { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Concat { left, right } => left.contains_function() || right.contains_function(),
            Expr::And(a, b) | Expr::Or(a, b) => a.contains_function() || b.contains_function(),
            Expr::Not(e) | Expr::Neg(e) => e.contains_function(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_function() || pattern.contains_function()
            }
            Expr::IsNull { expr, .. } => expr.contains_function(),
            Expr::InList { expr, list, .. } => {
                expr.contains_function() || list.iter().any(|e| e.contains_function())
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_function() || low.contains_function() || high.contains_function()
            }
            Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|a| a.contains_function()),
            // Subqueries are opaque here: the rewrite gates on
            // `contains_subquery` before this question ever matters.
            Expr::InSubquery { expr, .. } => expr.contains_function(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
            Expr::Cast { expr, .. } => expr.contains_function(),
            Expr::Case { operand, branches, else_branch } => {
                operand.as_ref().is_some_and(|e| e.contains_function())
                    || branches.iter().any(|(w, t)| w.contains_function() || t.contains_function())
                    || else_branch.as_ref().is_some_and(|e| e.contains_function())
            }
        }
    }

    /// Collects every base-table name reachable from subqueries inside the
    /// expression tree (lowercased, in discovery order) into `out`. The
    /// building block of [`SelectStatement::all_referenced_tables`].
    pub(crate) fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Expr::InSubquery { expr, query, .. } => {
                expr.collect_tables(out);
                query.collect_tables(out);
            }
            Expr::Exists { query, .. } => query.collect_tables(out),
            Expr::ScalarSubquery(q) => q.collect_tables(out),
            Expr::Literal(_) | Expr::Column { .. } => {}
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Concat { left, right } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_tables(out),
            Expr::Like { expr, pattern, .. } => {
                expr.collect_tables(out);
                pattern.collect_tables(out);
            }
            Expr::IsNull { expr, .. } => expr.collect_tables(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_tables(out);
                for e in list {
                    e.collect_tables(out);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.collect_tables(out);
                low.collect_tables(out);
                high.collect_tables(out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_tables(out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_tables(out);
                }
            }
            Expr::Cast { expr, .. } => expr.collect_tables(out),
            Expr::Case { operand, branches, else_branch } => {
                if let Some(o) = operand {
                    o.collect_tables(out);
                }
                for (w, t) in branches {
                    w.collect_tables(out);
                    t.collect_tables(out);
                }
                if let Some(e) = else_branch {
                    e.collect_tables(out);
                }
            }
        }
    }

    /// Collects every column reference in the expression tree.
    pub fn referenced_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { table, column } => out.push((table.clone(), column.clone())),
            Expr::Literal(_) => {}
            Expr::Compare { left, right, .. }
            | Expr::Arith { left, right, .. }
            | Expr::Concat { left, right } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::InSubquery { expr, .. } => expr.referenced_columns(out),
            Expr::Between { expr, low, high, .. } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.referenced_columns(out),
            Expr::Case { operand, branches, else_branch } => {
                if let Some(o) = operand {
                    o.referenced_columns(out);
                }
                for (w, t) in branches {
                    w.referenced_columns(out);
                    t.referenced_columns(out);
                }
                if let Some(e) = else_branch {
                    e.referenced_columns(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::Aggregate {
                kind: AggregateKind::Sum,
                distinct: false,
                arg: Some(Box::new(Expr::col("amount"))),
            }),
            right: Box::new(Expr::lit(100)),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("amount").contains_aggregate());
    }

    #[test]
    fn referenced_columns_collects_qualified_and_bare() {
        let e = Expr::And(
            Box::new(Expr::Compare {
                op: CompareOp::Eq,
                left: Box::new(Expr::qcol("schools", "Magnet")),
                right: Box::new(Expr::lit(1)),
            }),
            Box::new(Expr::Compare {
                op: CompareOp::Gt,
                left: Box::new(Expr::col("NumTstTakr")),
                right: Box::new(Expr::lit(500)),
            }),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (Some("schools".to_string()), "Magnet".to_string()));
        assert_eq!(cols[1], (None, "NumTstTakr".to_string()));
    }

    #[test]
    fn table_ref_binding_name_prefers_alias() {
        let r = TableRef::Named { table: "satscores".into(), alias: Some("T1".into()) };
        assert_eq!(r.binding_name(), "T1");
        let r = TableRef::Named { table: "satscores".into(), alias: None };
        assert_eq!(r.binding_name(), "satscores");
    }

    #[test]
    fn split_conjuncts_flattens_nested_ands() {
        let e = Expr::And(
            Box::new(Expr::And(Box::new(Expr::col("a")), Box::new(Expr::col("b")))),
            Box::new(Expr::Or(Box::new(Expr::col("c")), Box::new(Expr::col("d")))),
        );
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &Expr::col("a"));
        assert!(matches!(parts[2], Expr::Or(..)), "OR is not split");
    }

    #[test]
    fn as_column_equality_matches_equi_join_shape() {
        let e = Expr::Compare {
            op: CompareOp::Eq,
            left: Box::new(Expr::qcol("t1", "id")),
            right: Box::new(Expr::qcol("t2", "id")),
        };
        let ((q1, c1), (q2, c2)) = e.as_column_equality().unwrap();
        assert_eq!((q1, c1), (Some("t1"), "id"));
        assert_eq!((q2, c2), (Some("t2"), "id"));
        // Non-Eq comparisons and column-vs-literal shapes don't match.
        let lt = Expr::Compare {
            op: CompareOp::Lt,
            left: Box::new(Expr::qcol("t1", "id")),
            right: Box::new(Expr::qcol("t2", "id")),
        };
        assert!(lt.as_column_equality().is_none());
        let lit = Expr::Compare {
            op: CompareOp::Eq,
            left: Box::new(Expr::col("id")),
            right: Box::new(Expr::lit(3)),
        };
        assert!(lit.as_column_equality().is_none());
        // ...but the literal shape is a point-lookup candidate, either way
        // around.
        let ((q, c), v) = lit.as_column_literal_equality().unwrap();
        assert_eq!((q, c), (None, "id"));
        assert_eq!(v, &Value::Integer(3));
        let flipped = Expr::Compare {
            op: CompareOp::Eq,
            left: Box::new(Expr::lit(3)),
            right: Box::new(Expr::col("id")),
        };
        assert!(flipped.as_column_literal_equality().is_some());
    }

    #[test]
    fn contains_subquery_detects_all_forms() {
        let sub = Box::new(SelectStatement::empty());
        assert!(Expr::Exists { negated: false, query: sub.clone() }.contains_subquery());
        assert!(Expr::ScalarSubquery(sub.clone()).contains_subquery());
        let nested = Expr::And(
            Box::new(Expr::col("a")),
            Box::new(Expr::InSubquery {
                negated: false,
                expr: Box::new(Expr::col("b")),
                query: sub,
            }),
        );
        assert!(nested.contains_subquery());
        assert!(!Expr::col("a").contains_subquery());
    }

    #[test]
    fn aggregate_kind_parse_round_trip() {
        for name in ["count", "SUM", "Avg", "MIN", "max"] {
            let k = AggregateKind::parse(name).unwrap();
            assert_eq!(k.name(), name.to_ascii_uppercase());
        }
        assert!(AggregateKind::parse("median").is_none());
    }
}
