//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::schema::DataType;
use crate::token::{tokenize, Symbol, Token};
use crate::value::{ArithOp, Value};

/// Parses a single SQL statement.
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.skip_symbol(Symbol::Semicolon);
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement near {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Parses a SQL `SELECT` statement (convenience wrapper used by most callers).
pub fn parse_select(sql: &str) -> SqlResult<SelectStatement> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(SqlError::Parse(format!("expected SELECT, parsed {other:?}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn check_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.check_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn check_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), Some(Token::Symbol(x)) if *x == s)
    }

    fn skip_symbol(&mut self, s: Symbol) -> bool {
        if self.check_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> SqlResult<()> {
        if self.skip_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn expect_identifier(&mut self) -> SqlResult<String> {
        match self.advance() {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> SqlResult<Statement> {
        if self.check_keyword("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.check_keyword("CREATE") {
            Ok(Statement::CreateTable(self.parse_create_table()?))
        } else if self.check_keyword("INSERT") {
            Ok(Statement::Insert(self.parse_insert()?))
        } else if self.check_keyword("UPDATE") {
            Ok(Statement::Update(self.parse_update()?))
        } else if self.check_keyword("DELETE") {
            Ok(Statement::Delete(self.parse_delete()?))
        } else if self.check_keyword("EXPLAIN") {
            self.advance();
            let analyze = self.eat_keyword("ANALYZE");
            Ok(Statement::Explain(ExplainStatement { analyze, query: self.parse_select()? }))
        } else {
            Err(SqlError::Parse(format!("unsupported statement start: {:?}", self.peek())))
        }
    }

    fn parse_create_table(&mut self) -> SqlResult<CreateTableStatement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        // optional IF NOT EXISTS
        if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
        }
        let name = self.expect_identifier()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        let mut foreign_keys = Vec::new();
        loop {
            if self.check_keyword("PRIMARY") {
                // table-level PRIMARY KEY (col, ...)
                self.advance();
                self.expect_keyword("KEY")?;
                self.expect_symbol(Symbol::LParen)?;
                let pk_cols = self.parse_identifier_list()?;
                self.expect_symbol(Symbol::RParen)?;
                for (c, _t, pk) in columns.iter_mut() {
                    let c: &String = c;
                    if pk_cols.iter().any(|p| p.eq_ignore_ascii_case(c)) {
                        *pk = true;
                    }
                }
            } else if self.check_keyword("FOREIGN") {
                self.advance();
                self.expect_keyword("KEY")?;
                self.expect_symbol(Symbol::LParen)?;
                let from_col = self.expect_identifier()?;
                self.expect_symbol(Symbol::RParen)?;
                self.expect_keyword("REFERENCES")?;
                let to_table = self.expect_identifier()?;
                self.expect_symbol(Symbol::LParen)?;
                let to_col = self.expect_identifier()?;
                self.expect_symbol(Symbol::RParen)?;
                foreign_keys.push((from_col, to_table, to_col));
            } else {
                let col_name = self.expect_identifier()?;
                // type name may be multiple idents, e.g. "double precision"
                let mut ty = String::new();
                while let Some(Token::Ident(w)) = self.peek() {
                    let upper = w.to_ascii_uppercase();
                    if ["PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "REFERENCES"]
                        .contains(&upper.as_str())
                    {
                        break;
                    }
                    ty.push_str(w);
                    ty.push(' ');
                    self.advance();
                    // tolerate a parenthesised length, e.g. varchar(20)
                    if self.skip_symbol(Symbol::LParen) {
                        while !self.skip_symbol(Symbol::RParen) {
                            if self.advance().is_none() {
                                return Err(SqlError::Parse("unterminated type".into()));
                            }
                        }
                    }
                }
                let mut primary = false;
                loop {
                    if self.eat_keyword("PRIMARY") {
                        self.expect_keyword("KEY")?;
                        primary = true;
                    } else if self.eat_keyword("NOT") {
                        self.expect_keyword("NULL")?;
                    } else if self.eat_keyword("NULL") || self.eat_keyword("UNIQUE") {
                        // ignore
                    } else if self.eat_keyword("DEFAULT") {
                        self.advance();
                    } else {
                        break;
                    }
                }
                columns.push((col_name, DataType::parse(ty.trim()), primary));
            }
            if !self.skip_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(CreateTableStatement { name, columns, foreign_keys })
    }

    fn parse_insert(&mut self) -> SqlResult<InsertStatement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;
        let mut columns = Vec::new();
        if self.skip_symbol(Symbol::LParen) {
            columns = self.parse_identifier_list()?;
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.skip_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(row);
            if !self.skip_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(InsertStatement { table, columns, rows })
    }

    fn parse_update(&mut self) -> SqlResult<UpdateStatement> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_identifier()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((column, self.parse_expr()?));
            if !self.skip_symbol(Symbol::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(UpdateStatement { table, assignments, where_clause })
    }

    fn parse_delete(&mut self) -> SqlResult<DeleteStatement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier()?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(DeleteStatement { table, where_clause })
    }

    fn parse_identifier_list(&mut self) -> SqlResult<Vec<String>> {
        let mut out = vec![self.expect_identifier()?];
        while self.skip_symbol(Symbol::Comma) {
            out.push(self.expect_identifier()?);
        }
        Ok(out)
    }

    fn parse_select(&mut self) -> SqlResult<SelectStatement> {
        self.expect_keyword("SELECT")?;
        let mut stmt = SelectStatement::empty();
        stmt.distinct = self.eat_keyword("DISTINCT");
        if self.eat_keyword("ALL") {
            stmt.distinct = false;
        }

        loop {
            stmt.projections.push(self.parse_projection()?);
            if !self.skip_symbol(Symbol::Comma) {
                break;
            }
        }

        if self.eat_keyword("FROM") {
            stmt.from = Some(self.parse_table_ref()?);
            loop {
                let kind = if self.check_keyword("INNER") || self.check_keyword("JOIN") {
                    self.eat_keyword("INNER");
                    if !self.eat_keyword("JOIN") {
                        break;
                    }
                    JoinKind::Inner
                } else if self.check_keyword("LEFT") {
                    self.advance();
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinKind::Left
                } else if self.check_symbol(Symbol::Comma) {
                    // comma join == inner join with ON in WHERE
                    self.advance();
                    let table = self.parse_table_ref()?;
                    stmt.joins.push(Join { kind: JoinKind::Inner, table, on: None });
                    continue;
                } else {
                    break;
                };
                let table = self.parse_table_ref()?;
                let on = if self.eat_keyword("ON") { Some(self.parse_expr()?) } else { None };
                stmt.joins.push(Join { kind, table, on });
            }
        }

        if self.eat_keyword("WHERE") {
            stmt.where_clause = Some(self.parse_expr()?);
        }

        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.skip_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("HAVING") {
            stmt.having = Some(self.parse_expr()?);
        }

        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, descending });
                if !self.skip_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("LIMIT") {
            let n = self.parse_unsigned()?;
            if self.eat_keyword("OFFSET") {
                stmt.offset = Some(self.parse_unsigned()?);
            } else if self.skip_symbol(Symbol::Comma) {
                // LIMIT offset, count (MySQL style, appears in some gold SQL)
                let count = self.parse_unsigned()?;
                stmt.offset = Some(n);
                stmt.limit = Some(count);
                return Ok(stmt);
            }
            stmt.limit = Some(n);
        }

        Ok(stmt)
    }

    fn parse_unsigned(&mut self) -> SqlResult<u64> {
        match self.advance() {
            Some(Token::Integer(i)) if i >= 0 => Ok(i as u64),
            other => {
                Err(SqlError::Parse(format!("expected non-negative integer, found {other:?}")))
            }
        }
    }

    fn parse_projection(&mut self) -> SqlResult<Projection> {
        if self.check_symbol(Symbol::Star) {
            self.advance();
            return Ok(Projection::Wildcard);
        }
        // table.* ?
        if let (
            Some(Token::Ident(t)),
            Some(Token::Symbol(Symbol::Dot)),
            Some(Token::Symbol(Symbol::Star)),
        ) = (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let table = t.clone();
            self.pos += 3;
            return Ok(Projection::TableWildcard(table));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_identifier()?)
        } else {
            // bare alias: identifier not followed by '.' and not a clause keyword
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let a = s.clone();
                    self.advance();
                    Some(a)
                }
                Some(Token::QuotedIdent(s)) => {
                    let a = s.clone();
                    self.advance();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> SqlResult<TableRef> {
        if self.skip_symbol(Symbol::LParen) {
            let query = self.parse_select()?;
            self.expect_symbol(Symbol::RParen)?;
            self.eat_keyword("AS");
            let alias = self.expect_identifier()?;
            return Ok(TableRef::Derived { query: Box::new(query), alias });
        }
        let table = self.expect_identifier()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_identifier()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let a = s.clone();
                    self.advance();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef::Named { table, alias })
    }

    // ---- expression parsing (precedence climbing) ----

    fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> SqlResult<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { negated, expr: Box::new(left) });
        }

        let negated = if self.check_keyword("NOT")
            && self.peek_at(1).is_some_and(|t| {
                t.is_keyword("LIKE") || t.is_keyword("IN") || t.is_keyword("BETWEEN")
            }) {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { negated, expr: Box::new(left), pattern: Box::new(pattern) });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.check_keyword("SELECT") {
                let query = self.parse_select()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery {
                    negated,
                    expr: Box::new(left),
                    query: Box::new(query),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.skip_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { negated, expr: Box::new(left), list });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                negated,
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before comparison".into()));
        }

        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(CompareOp::Eq),
            Some(Token::Symbol(Symbol::NotEq)) => Some(CompareOp::NotEq),
            Some(Token::Symbol(Symbol::Lt)) => Some(CompareOp::Lt),
            Some(Token::Symbol(Symbol::LtEq)) => Some(CompareOp::LtEq),
            Some(Token::Symbol(Symbol::Gt)) => Some(CompareOp::Gt),
            Some(Token::Symbol(Symbol::GtEq)) => Some(CompareOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::Compare { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.check_symbol(Symbol::Plus) {
                self.advance();
                let right = self.parse_multiplicative()?;
                left =
                    Expr::Arith { op: ArithOp::Add, left: Box::new(left), right: Box::new(right) };
            } else if self.check_symbol(Symbol::Minus) {
                self.advance();
                let right = self.parse_multiplicative()?;
                left =
                    Expr::Arith { op: ArithOp::Sub, left: Box::new(left), right: Box::new(right) };
            } else if self.check_symbol(Symbol::Concat) {
                self.advance();
                let right = self.parse_multiplicative()?;
                left = Expr::Concat { left: Box::new(left), right: Box::new(right) };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            if self.check_symbol(Symbol::Star) {
                self.advance();
                let right = self.parse_unary()?;
                left =
                    Expr::Arith { op: ArithOp::Mul, left: Box::new(left), right: Box::new(right) };
            } else if self.check_symbol(Symbol::Slash) {
                self.advance();
                let right = self.parse_unary()?;
                left =
                    Expr::Arith { op: ArithOp::Div, left: Box::new(left), right: Box::new(right) };
            } else if self.check_symbol(Symbol::Percent) {
                self.advance();
                let right = self.parse_unary()?;
                left =
                    Expr::Arith { op: ArithOp::Mod, left: Box::new(left), right: Box::new(right) };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.check_symbol(Symbol::Minus) {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if self.check_symbol(Symbol::Plus) {
            self.advance();
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Integer(i)) => {
                self.advance();
                Ok(Expr::Literal(Value::Integer(i)))
            }
            Some(Token::Float(f)) => {
                self.advance();
                Ok(Expr::Literal(Value::Real(f)))
            }
            Some(Token::String(s)) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Symbol(Symbol::Star)) => {
                // bare * only valid inside COUNT(*), handled by function parsing;
                // reaching here means COUNT(*) path
                self.advance();
                Ok(Expr::Literal(Value::Integer(1)))
            }
            Some(Token::Symbol(Symbol::LParen)) => {
                self.advance();
                if self.check_keyword("SELECT") {
                    let q = self.parse_select()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => self.parse_ident_expr(name),
            Some(Token::QuotedIdent(name)) => {
                self.advance();
                // quoted identifiers can still be table.column
                if self.check_symbol(Symbol::Dot) {
                    self.advance();
                    let col = self.expect_identifier()?;
                    return Ok(Expr::Column { table: Some(name), column: col });
                }
                Ok(Expr::Column { table: None, column: name })
            }
            other => Err(SqlError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn parse_ident_expr(&mut self, name: String) -> SqlResult<Expr> {
        let upper = name.to_ascii_uppercase();

        // NULL literal
        if upper == "NULL" {
            self.advance();
            return Ok(Expr::Literal(Value::Null));
        }
        if upper == "TRUE" {
            self.advance();
            return Ok(Expr::Literal(Value::Integer(1)));
        }
        if upper == "FALSE" {
            self.advance();
            return Ok(Expr::Literal(Value::Integer(0)));
        }

        // EXISTS (subquery)
        if upper == "EXISTS" {
            self.advance();
            self.expect_symbol(Symbol::LParen)?;
            let q = self.parse_select()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Exists { negated: false, query: Box::new(q) });
        }

        // CASE expression
        if upper == "CASE" {
            self.advance();
            return self.parse_case();
        }

        // CAST(expr AS type)
        if upper == "CAST" && matches!(self.peek_at(1), Some(Token::Symbol(Symbol::LParen))) {
            self.advance();
            self.advance();
            let inner = self.parse_expr()?;
            self.expect_keyword("AS")?;
            let ty = self.expect_identifier()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Cast { expr: Box::new(inner), target: DataType::parse(&ty) });
        }

        // Function call or aggregate
        if matches!(self.peek_at(1), Some(Token::Symbol(Symbol::LParen))) {
            self.advance(); // name
            self.advance(); // (
            if let Some(kind) = AggregateKind::parse(&name) {
                // COUNT(*) special case
                if self.check_symbol(Symbol::Star) {
                    self.advance();
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Aggregate { kind, distinct: false, arg: None });
                }
                let distinct = self.eat_keyword("DISTINCT");
                if self.check_symbol(Symbol::RParen) {
                    self.advance();
                    return Ok(Expr::Aggregate { kind, distinct, arg: None });
                }
                let arg = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::Aggregate { kind, distinct, arg: Some(Box::new(arg)) });
            }
            let mut args = Vec::new();
            if !self.check_symbol(Symbol::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.skip_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Function { name: name.to_ascii_uppercase(), args });
        }

        // Reserved clause keywords cannot start a bare column reference; this
        // catches malformed statements like `SELECT FROM t`.
        if is_clause_keyword(&name) {
            return Err(SqlError::Parse(format!("unexpected keyword {name} in expression")));
        }

        // Column reference, possibly qualified.
        self.advance();
        if self.check_symbol(Symbol::Dot) {
            self.advance();
            let col = self.expect_identifier()?;
            return Ok(Expr::Column { table: Some(name), column: col });
        }
        Ok(Expr::Column { table: None, column: name })
    }

    fn parse_case(&mut self) -> SqlResult<Expr> {
        let operand =
            if self.check_keyword("WHEN") { None } else { Some(Box::new(self.parse_expr()?)) };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        let else_branch =
            if self.eat_keyword("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { operand, branches, else_branch })
    }
}

/// Keywords that terminate an implicit alias.
fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "RIGHT"
            | "OUTER"
            | "ON"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "UNION"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "ASC"
            | "DESC"
            | "IN"
            | "IS"
            | "LIKE"
            | "BETWEEN"
            | "EXISTS"
            | "SELECT"
            | "DISTINCT"
            | "CASE"
            | "SET"
            | "VALUES"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_select("SELECT name FROM client WHERE gender = 'F'").unwrap();
        assert_eq!(s.projections.len(), 1);
        assert!(s.where_clause.is_some());
        assert_eq!(s.referenced_tables(), vec!["client".to_string()]);
    }

    #[test]
    fn parses_join_with_aliases() {
        let s = parse_select(
            "SELECT T1.`School Name` FROM frpm AS T1 INNER JOIN satscores AS T2 \
             ON T1.CDSCode = T2.cds WHERE T2.NumTstTakr > 500",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert!(matches!(s.joins[0].kind, JoinKind::Inner));
        assert!(s.joins[0].on.is_some());
    }

    #[test]
    fn parses_left_join() {
        let s = parse_select("SELECT a.x FROM a LEFT OUTER JOIN b ON a.id = b.id").unwrap();
        assert!(matches!(s.joins[0].kind, JoinKind::Left));
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let s = parse_select(
            "SELECT district_id, COUNT(*) AS n FROM account GROUP BY district_id \
             HAVING COUNT(*) > 5 ORDER BY n DESC, district_id ASC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn parses_aggregates_and_distinct() {
        let s = parse_select(
            "SELECT COUNT(DISTINCT client_id), SUM(amount), AVG(T1.amount) FROM loan AS T1",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 3);
        if let Projection::Expr { expr: Expr::Aggregate { kind, distinct, .. }, .. } =
            &s.projections[0]
        {
            assert_eq!(*kind, AggregateKind::Count);
            assert!(*distinct);
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn parses_in_between_like_null() {
        let s = parse_select(
            "SELECT * FROM molecule WHERE element IN ('cl','c') AND bond_type LIKE '%=%' \
             AND molecule_id BETWEEN 1 AND 10 AND label IS NOT NULL",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        let mut cols = Vec::new();
        w.referenced_columns(&mut cols);
        assert!(cols.iter().any(|(_, c)| c == "element"));
        assert!(cols.iter().any(|(_, c)| c == "molecule_id"));
    }

    #[test]
    fn parses_nested_subqueries() {
        let s = parse_select(
            "SELECT name FROM superhero WHERE eye_colour_id IN \
             (SELECT id FROM colour WHERE colour = 'Blue') AND id > (SELECT AVG(id) FROM superhero)",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        match w {
            Expr::And(a, b) => {
                assert!(matches!(*a, Expr::InSubquery { .. }));
                assert!(matches!(*b, Expr::Compare { .. }));
            }
            _ => panic!("expected AND"),
        }
    }

    #[test]
    fn parses_exists() {
        let s = parse_select("SELECT 1 FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.id = a.id)")
            .unwrap();
        assert!(matches!(s.where_clause.unwrap(), Expr::Exists { .. }));
    }

    #[test]
    fn parses_case_and_cast_and_iif() {
        let s = parse_select(
            "SELECT CASE WHEN Magnet = 1 THEN 'yes' ELSE 'no' END, \
             CAST(NumGE1500 AS REAL) / NumTstTakr, IIF(x > 0, 1, 0) FROM satscores",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 3);
        if let Projection::Expr { expr: Expr::Function { name, args }, .. } = &s.projections[2] {
            assert_eq!(name, "IIF");
            assert_eq!(args.len(), 3);
        } else {
            panic!("expected IIF function");
        }
    }

    #[test]
    fn parses_derived_table() {
        let s = parse_select("SELECT t.n FROM (SELECT COUNT(*) AS n FROM loan) AS t").unwrap();
        assert!(matches!(s.from, Some(TableRef::Derived { .. })));
    }

    #[test]
    fn parses_create_table_and_insert() {
        let c = parse_statement(
            "CREATE TABLE loan (loan_id INTEGER PRIMARY KEY, account_id INT, amount REAL, \
             FOREIGN KEY (account_id) REFERENCES account(account_id))",
        )
        .unwrap();
        match c {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.columns.len(), 3);
                assert!(ct.columns[0].2);
                assert_eq!(ct.foreign_keys.len(), 1);
            }
            _ => panic!("expected create table"),
        }
        let i = parse_statement(
            "INSERT INTO loan (loan_id, account_id, amount) VALUES (1, 2, 3.5), (2, 3, 100)",
        )
        .unwrap();
        match i {
            Statement::Insert(ins) => assert_eq!(ins.rows.len(), 2),
            _ => panic!("expected insert"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_select("SELEC x FROM y").is_err());
        assert!(parse_select("SELECT FROM").is_err());
        assert!(parse_select("SELECT x FROM y WHERE").is_err());
        assert!(parse_select("SELECT x FROM y extra garbage !!").is_err());
    }

    #[test]
    fn parses_mysql_style_limit() {
        let s = parse_select("SELECT x FROM t LIMIT 5, 10").unwrap();
        assert_eq!(s.offset, Some(5));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_not_variants() {
        let s = parse_select(
            "SELECT x FROM t WHERE a NOT LIKE '%z%' AND b NOT IN (1,2) AND c NOT BETWEEN 1 AND 2 AND NOT d = 1",
        )
        .unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_comma_join() {
        let s = parse_select("SELECT a.x, b.y FROM a, b WHERE a.id = b.id").unwrap();
        assert_eq!(s.joins.len(), 1);
        assert!(s.joins[0].on.is_none());
    }
}
