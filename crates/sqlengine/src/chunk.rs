//! Columnar data representation: typed value arrays with null bitmaps and
//! the [`DataChunk`] batches that flow between columnar operators.
//!
//! The row executor moves `Vec<Value>` rows one at a time; the columnar
//! executor ([`crate::plan::PlanMode::Columnar`]) moves [`DataChunk`]s of up
//! to [`BATCH_SIZE`] rows, each column stored as a [`ColumnArray`]. A column
//! whose non-null cells all share one storage class is stored as a typed
//! vector (`Vec<i64>`, `Vec<f64>`, or `Vec<String>`) plus a [`NullBitmap`];
//! a column mixing storage classes (legal here, as in SQLite) degrades to a
//! `Mixed` array of plain [`Value`]s. Integers and reals are deliberately
//! *not* merged into one float array: `Value::render` distinguishes `2`
//! from `2.0`, so the storage class of every cell must survive batching.
//!
//! [`ArrayBuilder`] starts untyped, specializes on the first non-null value
//! (backfilling null placeholders), and degrades to `Mixed` on the first
//! class conflict — so construction never needs the column type up front.
//!
//! [`SelChunk`] pairs a shared chunk with an optional *selection vector*:
//! filters mark surviving rows instead of gathering a copy, conjunctive
//! predicates refine the same selection in place, and the survivors are
//! physically compacted only at pipeline boundaries (join build/probe,
//! grouping, output) or when selectivity drops below
//! 1/[`SELECTION_COMPACT_DENOM`].

use std::sync::Arc;

use crate::value::{Truth, Value};

/// Maximum number of rows carried by one [`DataChunk`].
pub const BATCH_SIZE: usize = 1024;

/// Lazy-compaction threshold for [`SelChunk`]: once fewer than one in this
/// many physical rows remain live, evaluating batch kernels over the whole
/// chunk wastes more work than one gather saves, so the selection is
/// compacted eagerly instead of waiting for the next pipeline boundary.
pub const SELECTION_COMPACT_DENOM: usize = 8;

/// A packed validity bitmap: bit `i` set means row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    bits: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullBitmap {
    /// An all-valid bitmap of the given length.
    pub fn new_valid(len: usize) -> Self {
        NullBitmap { bits: vec![0; len.div_ceil(64)], len, nulls: 0 }
    }

    /// Appends one validity flag.
    pub fn push(&mut self, is_null: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if is_null {
            self.bits[word] |= 1u64 << bit;
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// True when at least one row is NULL.
    pub fn any_null(&self) -> bool {
        self.nulls > 0
    }

    /// Appends all flags from `other`.
    pub fn extend(&mut self, other: &NullBitmap) {
        for i in 0..other.len {
            self.push(other.is_null(i));
        }
    }
}

/// One column of a [`DataChunk`]: a typed vector with a null bitmap, or a
/// `Mixed` escape hatch for columns spanning storage classes.
///
/// Typed variants keep a placeholder (`0`, `0.0`, `""`) in the value vector
/// at NULL positions; the bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnArray {
    /// All non-null cells are `Value::Integer`.
    Int { values: Vec<i64>, nulls: NullBitmap },
    /// All non-null cells are `Value::Real`.
    Real { values: Vec<f64>, nulls: NullBitmap },
    /// All non-null cells are `Value::Text`.
    Text { values: Vec<String>, nulls: NullBitmap },
    /// Cells span storage classes; stored as plain values (NULLs included).
    Mixed { values: Vec<Value> },
}

impl ColumnArray {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnArray::Int { nulls, .. }
            | ColumnArray::Real { nulls, .. }
            | ColumnArray::Text { nulls, .. } => nulls.len(),
            ColumnArray::Mixed { values } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnArray::Int { nulls, .. }
            | ColumnArray::Real { nulls, .. }
            | ColumnArray::Text { nulls, .. } => nulls.is_null(i),
            ColumnArray::Mixed { values } => values[i].is_null(),
        }
    }

    /// The cell at row `i` as an owned [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnArray::Int { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Integer(values[i])
                }
            }
            ColumnArray::Real { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Real(values[i])
                }
            }
            ColumnArray::Text { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Text(values[i].clone())
                }
            }
            ColumnArray::Mixed { values } => values[i].clone(),
        }
    }

    /// Moves the cell at row `i` out of the column, leaving a NULL-class
    /// placeholder behind. The caller must not read row `i` again; used by
    /// projection assembly to avoid a clone per text cell.
    pub fn take_at(&mut self, i: usize) -> Value {
        match self {
            ColumnArray::Int { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Integer(values[i])
                }
            }
            ColumnArray::Real { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Real(values[i])
                }
            }
            ColumnArray::Text { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Text(std::mem::take(&mut values[i]))
                }
            }
            ColumnArray::Mixed { values } => std::mem::replace(&mut values[i], Value::Null),
        }
    }

    /// SQL truthiness of the cell at row `i` (see [`Value::to_truth`]).
    pub fn truth_at(&self, i: usize) -> Truth {
        match self {
            ColumnArray::Int { values, nulls } => {
                if nulls.is_null(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(values[i] != 0)
                }
            }
            ColumnArray::Real { values, nulls } => {
                if nulls.is_null(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(values[i] != 0.0)
                }
            }
            ColumnArray::Text { values, nulls } => {
                if nulls.is_null(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(!values[i].is_empty() && values[i] != "0")
                }
            }
            ColumnArray::Mixed { values } => values[i].to_truth(),
        }
    }

    /// Builds a column from a slice of values.
    pub fn from_values(vals: &[Value]) -> ColumnArray {
        let mut b = ArrayBuilder::with_capacity(vals.len());
        for v in vals {
            b.push(v);
        }
        b.finish()
    }

    /// A new column containing the rows of `self` selected by `idx`, in
    /// `idx` order (indices may repeat).
    pub fn gather(&self, idx: &[usize]) -> ColumnArray {
        match self {
            ColumnArray::Int { values, nulls } => {
                let mut out_nulls = NullBitmap::default();
                let out: Vec<i64> = idx
                    .iter()
                    .map(|&i| {
                        out_nulls.push(nulls.is_null(i));
                        values[i]
                    })
                    .collect();
                ColumnArray::Int { values: out, nulls: out_nulls }
            }
            ColumnArray::Real { values, nulls } => {
                let mut out_nulls = NullBitmap::default();
                let out: Vec<f64> = idx
                    .iter()
                    .map(|&i| {
                        out_nulls.push(nulls.is_null(i));
                        values[i]
                    })
                    .collect();
                ColumnArray::Real { values: out, nulls: out_nulls }
            }
            ColumnArray::Text { values, nulls } => {
                let mut out_nulls = NullBitmap::default();
                let out: Vec<String> = idx
                    .iter()
                    .map(|&i| {
                        out_nulls.push(nulls.is_null(i));
                        values[i].clone()
                    })
                    .collect();
                ColumnArray::Text { values: out, nulls: out_nulls }
            }
            ColumnArray::Mixed { values } => {
                ColumnArray::Mixed { values: idx.iter().map(|&i| values[i].clone()).collect() }
            }
        }
    }
}

/// Internal typed state of an [`ArrayBuilder`].
#[derive(Debug, Clone)]
enum BuilderData {
    /// Only NULLs seen so far; no storage class committed yet.
    Untyped,
    Int(Vec<i64>),
    Real(Vec<f64>),
    Text(Vec<String>),
    Mixed(Vec<Value>),
}

/// Incremental [`ColumnArray`] constructor.
///
/// State machine: starts `Untyped` (NULLs only), specializes to the storage
/// class of the first non-null value (backfilling placeholder cells for the
/// NULLs already pushed), and degrades to `Mixed` permanently on the first
/// value of a different class. An all-NULL column finishes as a typed `Int`
/// array with an all-set bitmap.
#[derive(Debug, Clone)]
pub struct ArrayBuilder {
    data: BuilderData,
    nulls: NullBitmap,
}

impl Default for ArrayBuilder {
    fn default() -> Self {
        ArrayBuilder::new()
    }
}

impl ArrayBuilder {
    pub fn new() -> Self {
        ArrayBuilder { data: BuilderData::Untyped, nulls: NullBitmap::default() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        let _ = cap; // the first typed push allocates with the right capacity
        ArrayBuilder::new()
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Appends a NULL cell.
    pub fn push_null(&mut self) {
        self.nulls.push(true);
        match &mut self.data {
            BuilderData::Untyped => {}
            BuilderData::Int(v) => v.push(0),
            BuilderData::Real(v) => v.push(0.0),
            BuilderData::Text(v) => v.push(String::new()),
            BuilderData::Mixed(v) => v.push(Value::Null),
        }
    }

    /// Appends one value, specializing or degrading the builder as needed.
    pub fn push(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Integer(i) => {
                match &mut self.data {
                    BuilderData::Untyped => {
                        let mut vals = vec![0i64; self.nulls.len()];
                        vals.push(*i);
                        self.data = BuilderData::Int(vals);
                    }
                    BuilderData::Int(vals) => vals.push(*i),
                    BuilderData::Mixed(vals) => vals.push(Value::Integer(*i)),
                    BuilderData::Real(_) | BuilderData::Text(_) => {
                        self.degrade_to_mixed();
                        self.push(v);
                        return;
                    }
                }
                self.nulls.push(false);
            }
            Value::Real(r) => {
                match &mut self.data {
                    BuilderData::Untyped => {
                        let mut vals = vec![0.0f64; self.nulls.len()];
                        vals.push(*r);
                        self.data = BuilderData::Real(vals);
                    }
                    BuilderData::Real(vals) => vals.push(*r),
                    BuilderData::Mixed(vals) => vals.push(Value::Real(*r)),
                    BuilderData::Int(_) | BuilderData::Text(_) => {
                        self.degrade_to_mixed();
                        self.push(v);
                        return;
                    }
                }
                self.nulls.push(false);
            }
            Value::Text(s) => {
                match &mut self.data {
                    BuilderData::Untyped => {
                        let mut vals = vec![String::new(); self.nulls.len()];
                        vals.push(s.clone());
                        self.data = BuilderData::Text(vals);
                    }
                    BuilderData::Text(vals) => vals.push(s.clone()),
                    BuilderData::Mixed(vals) => vals.push(Value::Text(s.clone())),
                    BuilderData::Int(_) | BuilderData::Real(_) => {
                        self.degrade_to_mixed();
                        self.push(v);
                        return;
                    }
                }
                self.nulls.push(false);
            }
        }
    }

    /// Copies row `i` of `col` into the builder without a `Value` round trip
    /// when the types line up.
    pub fn push_from(&mut self, col: &ColumnArray, i: usize) {
        if col.is_null(i) {
            self.push_null();
            return;
        }
        match (&mut self.data, col) {
            (BuilderData::Int(vals), ColumnArray::Int { values, .. }) => {
                vals.push(values[i]);
                self.nulls.push(false);
            }
            (BuilderData::Real(vals), ColumnArray::Real { values, .. }) => {
                vals.push(values[i]);
                self.nulls.push(false);
            }
            (BuilderData::Text(vals), ColumnArray::Text { values, .. }) => {
                vals.push(values[i].clone());
                self.nulls.push(false);
            }
            _ => self.push(&col.value_at(i)),
        }
    }

    /// Appends every row of `col`; typed same-class appends are bulk copies.
    pub fn extend_from(&mut self, col: &ColumnArray) {
        // Specialize an untyped builder to the incoming column's class first
        // so the bulk paths below apply (placeholder backfill included).
        if matches!(self.data, BuilderData::Untyped) && !col.is_empty() {
            match col {
                ColumnArray::Int { .. } => self.data = BuilderData::Int(vec![0; self.nulls.len()]),
                ColumnArray::Real { .. } => {
                    self.data = BuilderData::Real(vec![0.0; self.nulls.len()])
                }
                ColumnArray::Text { .. } => {
                    self.data = BuilderData::Text(vec![String::new(); self.nulls.len()])
                }
                ColumnArray::Mixed { .. } => {
                    self.degrade_to_mixed();
                }
            }
        }
        match (&mut self.data, col) {
            (BuilderData::Int(vals), ColumnArray::Int { values, nulls }) => {
                vals.extend_from_slice(values);
                self.nulls.extend(nulls);
            }
            (BuilderData::Real(vals), ColumnArray::Real { values, nulls }) => {
                vals.extend_from_slice(values);
                self.nulls.extend(nulls);
            }
            (BuilderData::Text(vals), ColumnArray::Text { values, nulls }) => {
                vals.extend_from_slice(values);
                self.nulls.extend(nulls);
            }
            _ => {
                for i in 0..col.len() {
                    self.push_from(col, i);
                }
            }
        }
    }

    fn degrade_to_mixed(&mut self) {
        let n = self.nulls.len();
        let vals: Vec<Value> = match std::mem::replace(&mut self.data, BuilderData::Untyped) {
            BuilderData::Untyped => vec![Value::Null; n],
            BuilderData::Int(v) => (0..n)
                .map(|i| if self.nulls.is_null(i) { Value::Null } else { Value::Integer(v[i]) })
                .collect(),
            BuilderData::Real(v) => (0..n)
                .map(|i| if self.nulls.is_null(i) { Value::Null } else { Value::Real(v[i]) })
                .collect(),
            BuilderData::Text(v) => {
                let mut out = Vec::with_capacity(n);
                for (i, s) in v.into_iter().enumerate() {
                    out.push(if self.nulls.is_null(i) { Value::Null } else { Value::Text(s) });
                }
                out
            }
            BuilderData::Mixed(v) => v,
        };
        self.data = BuilderData::Mixed(vals);
    }

    /// Finalizes the builder into a [`ColumnArray`].
    pub fn finish(self) -> ColumnArray {
        match self.data {
            // All-NULL columns are represented as Int with an all-set bitmap;
            // the class never matters because every read checks the bitmap.
            BuilderData::Untyped => {
                ColumnArray::Int { values: vec![0; self.nulls.len()], nulls: self.nulls }
            }
            BuilderData::Int(values) => ColumnArray::Int { values, nulls: self.nulls },
            BuilderData::Real(values) => ColumnArray::Real { values, nulls: self.nulls },
            BuilderData::Text(values) => ColumnArray::Text { values, nulls: self.nulls },
            BuilderData::Mixed(values) => ColumnArray::Mixed { values },
        }
    }
}

/// A batch of rows in columnar layout. `rows` is explicit so zero-width
/// chunks (a FROM-less `SELECT`'s single conceptual row) still carry a row
/// count.
#[derive(Debug, Clone)]
pub struct DataChunk {
    pub columns: Vec<ColumnArray>,
    rows: usize,
}

impl DataChunk {
    /// A chunk with the given columns; all columns must share `rows` length.
    pub fn new(columns: Vec<ColumnArray>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        DataChunk { columns, rows }
    }

    /// A zero-column chunk of `rows` rows (FROM-less SELECT).
    pub fn unit(rows: usize) -> Self {
        DataChunk { columns: Vec::new(), rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Builds a chunk from row-oriented data; `width` disambiguates the
    /// zero-row case.
    pub fn from_rows(width: usize, rows: &[Vec<Value>]) -> DataChunk {
        let mut builders: Vec<ArrayBuilder> =
            (0..width).map(|_| ArrayBuilder::with_capacity(rows.len())).collect();
        for row in rows {
            debug_assert_eq!(row.len(), width);
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        DataChunk {
            columns: builders.into_iter().map(ArrayBuilder::finish).collect(),
            rows: rows.len(),
        }
    }

    /// Materializes row `i` as owned values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// Materializes row `i` into `buf`, reusing its allocation.
    pub fn read_row_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.value_at(i)));
    }

    /// A new chunk containing the selected rows, in `idx` order.
    pub fn gather(&self, idx: &[usize]) -> DataChunk {
        DataChunk { columns: self.columns.iter().map(|c| c.gather(idx)).collect(), rows: idx.len() }
    }

    /// Concatenates chunks of identical width into one chunk. Columns whose
    /// storage classes disagree across chunks degrade to `Mixed`.
    pub fn concat(width: usize, chunks: &[DataChunk]) -> DataChunk {
        let total: usize = chunks.iter().map(|c| c.rows).sum();
        let mut builders: Vec<ArrayBuilder> =
            (0..width).map(|_| ArrayBuilder::with_capacity(total)).collect();
        for chunk in chunks {
            debug_assert_eq!(chunk.width(), width);
            for (b, col) in builders.iter_mut().zip(&chunk.columns) {
                b.extend_from(col);
            }
        }
        DataChunk { columns: builders.into_iter().map(ArrayBuilder::finish).collect(), rows: total }
    }
}

/// A shared [`DataChunk`] plus an optional selection vector: the unit of
/// data flow between columnar operators.
///
/// `sel == None` means every physical row is live (the common case — scans
/// and keep-everything filters never allocate a selection). `sel == Some`
/// holds the live physical row indices in ascending order. Batch kernels
/// stay selection-unaware: they evaluate every *physical* row (dead-row
/// evaluation is safe because every kernel's errors are value-independent),
/// and consumers read only the live ones. Filters [`refine`](Self::refine)
/// the selection in place — a conjunction of predicates fuses into one
/// selection without materializing intermediate chunks — and
/// [`compact`](Self::compact) gathers the survivors only at pipeline
/// boundaries, or early when fewer than one in [`SELECTION_COMPACT_DENOM`]
/// rows survive ([`should_compact`](Self::should_compact)).
#[derive(Debug, Clone)]
pub struct SelChunk {
    chunk: Arc<DataChunk>,
    sel: Option<Vec<u32>>,
}

impl SelChunk {
    /// Wraps a chunk with every row live.
    pub fn all(chunk: Arc<DataChunk>) -> SelChunk {
        SelChunk { chunk, sel: None }
    }

    /// The underlying physical chunk (dead rows included).
    pub fn chunk(&self) -> &DataChunk {
        &self.chunk
    }

    /// The underlying chunk, `Arc`-shared.
    pub fn shared(&self) -> &Arc<DataChunk> {
        &self.chunk
    }

    /// The selection vector, or `None` when every physical row is live.
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.chunk.rows(),
        }
    }

    /// True when no selection vector is attached (all physical rows live).
    pub fn is_all_live(&self) -> bool {
        self.sel.is_none()
    }

    /// The physical row index of the `k`-th live row.
    pub fn live(&self, k: usize) -> usize {
        match &self.sel {
            Some(s) => s[k] as usize,
            None => k,
        }
    }

    /// Iterates the live physical row indices in ascending order.
    pub fn live_iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.live_rows()).map(|k| self.live(k))
    }

    /// Replaces the selection with `sel` (ascending physical row indices, a
    /// subset of the currently live rows).
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]), "selection must be ascending");
        debug_assert!(sel.last().is_none_or(|&i| (i as usize) < self.chunk.rows()));
        self.sel = Some(sel);
    }

    /// Refines the selection in place, keeping the live rows for which
    /// `keep(physical_index)` is true — the fused-filter path: a second
    /// predicate narrows the same selection instead of gathering a copy.
    pub fn refine(&mut self, mut keep: impl FnMut(usize) -> bool) {
        match &mut self.sel {
            Some(s) => s.retain(|&i| keep(i as usize)),
            None => {
                let kept: Vec<u32> =
                    (0..self.chunk.rows() as u32).filter(|&i| keep(i as usize)).collect();
                // A predicate that kept everything leaves the chunk untouched
                // (no selection allocated on the output side either).
                if kept.len() < self.chunk.rows() {
                    self.sel = Some(kept);
                }
            }
        }
    }

    /// True when selectivity has dropped below the lazy-compaction
    /// threshold: fewer than one in [`SELECTION_COMPACT_DENOM`] physical
    /// rows live (and a selection is actually attached).
    pub fn should_compact(&self) -> bool {
        match &self.sel {
            Some(s) => s.len() * SELECTION_COMPACT_DENOM < self.chunk.rows(),
            None => false,
        }
    }

    /// Gathers the live rows into a dense chunk. A fully-live chunk is
    /// returned as the same `Arc`, untouched.
    pub fn compact(&self) -> Arc<DataChunk> {
        match &self.sel {
            None => Arc::clone(&self.chunk),
            Some(s) => {
                let idx: Vec<usize> = s.iter().map(|&i| i as usize).collect();
                Arc::new(self.chunk.gather(&idx))
            }
        }
    }

    /// Compacts in place: the chunk becomes dense and the selection drops.
    pub fn compact_in_place(&mut self) {
        if self.sel.is_some() {
            self.chunk = self.compact();
            self.sel = None;
        }
    }
}

/// Splits row-oriented data into [`BATCH_SIZE`]-row chunks.
pub fn chunk_rows(width: usize, rows: &[Vec<Value>]) -> Vec<DataChunk> {
    rows.chunks(BATCH_SIZE).map(|slice| DataChunk::from_rows(width, slice)).collect()
}

/// Flattens chunks back into row-oriented data.
pub fn chunks_to_rows(chunks: &[DataChunk]) -> Vec<Vec<Value>> {
    let total: usize = chunks.iter().map(|c| c.rows()).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        for i in 0..chunk.rows() {
            out.push(chunk.row(i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: &[Value]) {
        let col = ColumnArray::from_values(vals);
        assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.is_null(i), v.is_null(), "null flag at {i}");
            let got = col.value_at(i);
            // Exact storage-class identity, not just grouping equality.
            assert_eq!(std::mem::discriminant(&got), std::mem::discriminant(v), "class at {i}");
            assert!(got.grouping_eq(v), "value at {i}: {got:?} vs {v:?}");
            assert_eq!(col.truth_at(i), v.to_truth(), "truth at {i}");
        }
    }

    #[test]
    fn builder_specializes_and_roundtrips_each_class() {
        roundtrip(&[Value::Integer(1), Value::Integer(-5), Value::Integer(0)]);
        roundtrip(&[Value::Real(1.5), Value::Real(-0.0), Value::Real(f64::NAN)]);
        roundtrip(&[Value::text("a"), Value::text(""), Value::text("0")]);
    }

    #[test]
    fn builder_backfills_leading_nulls() {
        let vals = [Value::Null, Value::Null, Value::Integer(7), Value::Null];
        let col = ColumnArray::from_values(&vals);
        assert!(matches!(col, ColumnArray::Int { .. }));
        roundtrip(&vals);
    }

    #[test]
    fn builder_degrades_to_mixed_on_class_conflict() {
        // Int then Real must NOT merge: render distinguishes 2 from 2.0.
        let vals = [Value::Integer(2), Value::Real(2.0), Value::Null, Value::text("2")];
        let col = ColumnArray::from_values(&vals);
        assert!(matches!(col, ColumnArray::Mixed { .. }));
        roundtrip(&vals);
        // Text then number degrades too, leading nulls preserved.
        roundtrip(&[Value::Null, Value::text("x"), Value::Integer(1)]);
        roundtrip(&[Value::Real(0.5), Value::text("y")]);
    }

    #[test]
    fn all_null_column_reads_back_null() {
        for n in [0usize, 1, 3] {
            let vals = vec![Value::Null; n];
            let col = ColumnArray::from_values(&vals);
            assert_eq!(col.len(), n);
            for i in 0..n {
                assert!(col.is_null(i));
                assert!(col.value_at(i).is_null());
            }
        }
    }

    #[test]
    fn null_bitmap_word_boundaries() {
        // Cross the 64-bit word boundary with an alternating pattern.
        let mut bm = NullBitmap::default();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.is_null(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.null_count(), (0..130).filter(|i| i % 3 == 0).count());
        let mut ext = NullBitmap::new_valid(63);
        ext.extend(&bm);
        assert_eq!(ext.len(), 63 + 130);
        assert!(!ext.is_null(62));
        for i in 0..130 {
            assert_eq!(ext.is_null(63 + i), i % 3 == 0, "extended bit {i}");
        }
    }

    #[test]
    fn chunking_handles_boundary_sizes() {
        // 0, 1, BATCH-1, BATCH, BATCH+1 rows must chunk and flatten
        // losslessly — off-by-one slicing bugs can't hide.
        for n in [0usize, 1, BATCH_SIZE - 1, BATCH_SIZE, BATCH_SIZE + 1] {
            let rows: Vec<Vec<Value>> = (0..n)
                .map(|i| {
                    vec![
                        Value::Integer(i as i64),
                        if i % 7 == 0 { Value::Null } else { Value::text(format!("s{i}")) },
                    ]
                })
                .collect();
            let chunks = chunk_rows(2, &rows);
            let expected_chunks = n.div_ceil(BATCH_SIZE);
            assert_eq!(chunks.len(), expected_chunks, "n={n}");
            assert!(chunks.iter().all(|c| c.rows() <= BATCH_SIZE && !c.is_empty()));
            let back = chunks_to_rows(&chunks);
            assert_eq!(back, rows, "n={n}");
        }
    }

    #[test]
    fn zero_width_chunks_preserve_row_count() {
        let rows: Vec<Vec<Value>> = vec![vec![]];
        let chunks = chunk_rows(0, &rows);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].rows(), 1);
        assert_eq!(chunks[0].width(), 0);
        assert_eq!(chunks_to_rows(&chunks), rows);
        assert_eq!(DataChunk::unit(1).rows(), 1);
    }

    #[test]
    fn gather_repeats_and_reorders() {
        let col = ColumnArray::from_values(&[Value::Integer(10), Value::Null, Value::Integer(30)]);
        let g = col.gather(&[2, 2, 0, 1]);
        assert_eq!(g.value_at(0), Value::Integer(30));
        assert_eq!(g.value_at(1), Value::Integer(30));
        assert_eq!(g.value_at(2), Value::Integer(10));
        assert!(g.is_null(3));

        let chunk = DataChunk::from_rows(
            2,
            &[vec![Value::Integer(1), Value::text("a")], vec![Value::Integer(2), Value::text("b")]],
        );
        let picked = chunk.gather(&[1, 0, 1]);
        assert_eq!(picked.rows(), 3);
        assert_eq!(picked.row(0), vec![Value::Integer(2), Value::text("b")]);
        assert_eq!(picked.row(2), vec![Value::Integer(2), Value::text("b")]);
    }

    #[test]
    fn concat_merges_same_class_and_degrades_on_conflict() {
        let a = DataChunk::from_rows(1, &[vec![Value::Integer(1)], vec![Value::Null]]);
        let b = DataChunk::from_rows(1, &[vec![Value::Integer(3)]]);
        let merged = DataChunk::concat(1, &[a.clone(), b]);
        assert_eq!(merged.rows(), 3);
        assert!(matches!(merged.columns[0], ColumnArray::Int { .. }));
        assert_eq!(merged.row(2), vec![Value::Integer(3)]);

        // An all-NULL chunk finishes as Int; concat with a Text chunk must
        // still read back the original values.
        let nulls = DataChunk::from_rows(1, &[vec![Value::Null]]);
        let texts = DataChunk::from_rows(1, &[vec![Value::text("t")]]);
        let merged = DataChunk::concat(1, &[nulls, texts]);
        assert!(merged.columns[0].is_null(0));
        assert_eq!(merged.columns[0].value_at(1), Value::text("t"));

        let empty = DataChunk::concat(2, &[]);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.width(), 2);
    }

    #[test]
    fn take_at_moves_text_out_without_clone_semantics_change() {
        let mut col = ColumnArray::from_values(&[Value::text("abc"), Value::Null]);
        assert_eq!(col.take_at(0), Value::text("abc"));
        assert!(col.take_at(1).is_null());
        let mut mixed = ColumnArray::from_values(&[Value::Integer(1), Value::text("z")]);
        assert!(matches!(mixed, ColumnArray::Mixed { .. }));
        assert_eq!(mixed.take_at(1), Value::text("z"));
    }

    fn sel_fixture(n: usize) -> SelChunk {
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i as i64)]).collect();
        SelChunk::all(Arc::new(DataChunk::from_rows(1, &rows)))
    }

    #[test]
    fn selection_starts_all_live_and_refines_in_place() {
        let mut sc = sel_fixture(10);
        assert!(sc.is_all_live());
        assert_eq!(sc.live_rows(), 10);
        assert_eq!(sc.live_iter().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());

        // A keep-everything refinement must not allocate a selection.
        sc.refine(|_| true);
        assert!(sc.is_all_live());

        // First predicate: keep even rows.
        sc.refine(|i| i % 2 == 0);
        assert_eq!(sc.live_iter().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
        // Conjunctive refinement narrows the *same* selection (fused filter).
        sc.refine(|i| i >= 4);
        assert_eq!(sc.live_iter().collect::<Vec<_>>(), vec![4, 6, 8]);
        assert_eq!(sc.live(1), 6);
        assert_eq!(sc.chunk().rows(), 10, "no physical copy happened");
    }

    #[test]
    fn selection_compact_gathers_live_rows_only() {
        let mut sc = sel_fixture(6);
        sc.refine(|i| i == 1 || i == 4);
        let dense = sc.compact();
        assert_eq!(dense.rows(), 2);
        assert_eq!(dense.row(0), vec![Value::Integer(1)]);
        assert_eq!(dense.row(1), vec![Value::Integer(4)]);
        sc.compact_in_place();
        assert!(sc.is_all_live());
        assert_eq!(sc.live_rows(), 2);
        assert_eq!(sc.chunk().row(1), vec![Value::Integer(4)]);

        // Fully-live compaction is the identity Arc, not a copy.
        let full = sel_fixture(3);
        assert!(Arc::ptr_eq(&full.compact(), full.shared()));
    }

    #[test]
    fn selection_empty_and_threshold() {
        let mut sc = sel_fixture(32);
        assert!(!sc.should_compact());
        sc.refine(|i| i < 8);
        // 8/32 live = exactly 1/4 — above the 1/8 threshold.
        assert!(!sc.should_compact());
        sc.refine(|i| i < 3);
        // 3/32 < 1/8: compaction pays for itself now.
        assert!(sc.should_compact());
        sc.refine(|_| false);
        assert_eq!(sc.live_rows(), 0);
        assert_eq!(sc.live_iter().count(), 0);
        assert_eq!(sc.compact().rows(), 0);
    }

    #[test]
    fn set_selection_replaces_live_set() {
        let mut sc = sel_fixture(5);
        sc.set_selection(vec![0, 3]);
        assert_eq!(sc.live_iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(sc.live_rows(), 2);
    }

    #[test]
    fn read_row_into_reuses_buffer() {
        let chunk = DataChunk::from_rows(
            2,
            &[vec![Value::Integer(1), Value::Null], vec![Value::Integer(2), Value::text("x")]],
        );
        let mut buf = Vec::new();
        chunk.read_row_into(0, &mut buf);
        assert_eq!(buf, vec![Value::Integer(1), Value::Null]);
        chunk.read_row_into(1, &mut buf);
        assert_eq!(buf, vec![Value::Integer(2), Value::text("x")]);
    }
}
