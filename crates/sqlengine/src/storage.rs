//! Row storage: in-memory tables and databases, plus the hash indexes the
//! physical planner uses for primary-key point lookups and hash joins.

use std::collections::{BTreeMap, HashMap};

use crate::error::{SqlError, SqlResult};
use crate::schema::{DatabaseSchema, TableSchema};
use crate::value::Value;

/// A single row of values, positionally aligned with the table schema.
pub type Row = Vec<Value>;

/// A multimap from SQL values to row positions whose probe semantics match
/// [`Value::sql_cmp`] equality exactly.
///
/// `sql_cmp` equality is not an equivalence relation — `2 = '2'` and
/// `2 = '2.0'` but `'2' <> '2.0'` — so a single hash key cannot represent
/// it. The map therefore keeps layered stores:
///
/// * finite numbers, hashed by normalized `f64` bits (`-0.0` folded into
///   `0.0`);
/// * text, hashed byte-exact;
/// * a side list of text entries that parse as numbers, scanned linearly
///   when probing with a number (empty for typical corpora, so probes stay
///   O(1));
/// * NaN corner-case lists: under `sql_cmp`'s `partial_cmp` fallback a NaN
///   compares *equal* to every number, so NaN-keyed rows join every numeric
///   probe and a NaN probe joins every numeric row.
///
/// `NULL` keys are never stored and never match — SQL three-valued logic
/// makes `NULL = NULL` unknown, which a join treats as false.
#[derive(Debug, Clone, Default)]
pub struct EqKeyMap {
    /// Finite `Integer`/`Real` rows by normalized bit pattern.
    num: HashMap<u64, Vec<usize>>,
    /// Every `Integer`/`Real` row (including NaN), for NaN probes.
    all_num_rows: Vec<usize>,
    /// `Real` rows whose value is NaN.
    nan_num_rows: Vec<usize>,
    /// Text rows by exact content.
    text: HashMap<String, Vec<usize>>,
    /// Text rows whose content parses as a finite number.
    numeric_texts: Vec<(f64, usize)>,
    /// Text rows whose content parses as NaN.
    nan_text_rows: Vec<usize>,
    len: usize,
}

/// Normalizes a float for key hashing: `-0.0` and `0.0` compare equal under
/// `sql_cmp`, so they must share a bucket.
fn num_key_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

impl EqKeyMap {
    /// Records `row` under key `v`. `NULL` keys are dropped (they can never
    /// match). Rows must be inserted in ascending position order for probes
    /// to preserve scan order.
    pub fn insert(&mut self, v: &Value, row: usize) {
        match v {
            Value::Null => return,
            Value::Integer(i) => {
                self.num.entry(num_key_bits(*i as f64)).or_default().push(row);
                self.all_num_rows.push(row);
            }
            Value::Real(r) => {
                if r.is_nan() {
                    self.nan_num_rows.push(row);
                } else {
                    self.num.entry(num_key_bits(*r)).or_default().push(row);
                }
                self.all_num_rows.push(row);
            }
            Value::Text(s) => {
                self.text.entry(s.clone()).or_default().push(row);
                match s.parse::<f64>() {
                    Ok(x) if x.is_nan() => self.nan_text_rows.push(row),
                    Ok(x) => self.numeric_texts.push((x, row)),
                    Err(_) => {}
                }
            }
        }
        self.len += 1;
    }

    /// Number of (non-NULL) entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row positions whose key is `sql_cmp`-equal to `v`, in ascending order
    /// (matching the emission order of a plain scan). A `NULL` probe matches
    /// nothing.
    pub fn probe(&self, v: &Value) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        match v {
            Value::Null => {}
            Value::Integer(_) | Value::Real(_) => {
                let x = v.as_f64().expect("numeric value");
                if x.is_nan() {
                    // NaN compares equal to every number and numeric text.
                    out.extend_from_slice(&self.all_num_rows);
                    out.extend(self.numeric_texts.iter().map(|(_, r)| *r));
                    out.extend_from_slice(&self.nan_text_rows);
                } else {
                    if let Some(rows) = self.num.get(&num_key_bits(x)) {
                        out.extend_from_slice(rows);
                    }
                    out.extend(
                        self.numeric_texts.iter().filter(|(tx, _)| *tx == x).map(|(_, r)| *r),
                    );
                    out.extend_from_slice(&self.nan_num_rows);
                    out.extend_from_slice(&self.nan_text_rows);
                }
            }
            Value::Text(s) => {
                if let Some(rows) = self.text.get(s) {
                    out.extend_from_slice(rows);
                }
                // Numeric-looking text compares numerically against numbers
                // (but byte-exact against other text, handled above).
                match s.parse::<f64>() {
                    Ok(x) if x.is_nan() => out.extend_from_slice(&self.all_num_rows),
                    Ok(x) => {
                        if let Some(rows) = self.num.get(&num_key_bits(x)) {
                            out.extend_from_slice(rows);
                        }
                        out.extend_from_slice(&self.nan_num_rows);
                    }
                    Err(_) => {}
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// An in-memory table: schema, row store, and (when the schema declares a
/// single-column primary key) a hash index over that key, maintained on
/// every insert.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    /// Row store. Private so every mutation flows through [`Table::insert`],
    /// which keeps the PK hash index in sync; read access is via
    /// [`Table::rows`].
    rows: Vec<Row>,
    pk_col: Option<usize>,
    pk_index: EqKeyMap,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        let pk_cols: Vec<usize> = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect();
        // Only single-column keys are indexed; composite keys fall back to scans.
        let pk_col = if pk_cols.len() == 1 { Some(pk_cols[0]) } else { None };
        Table { schema, rows: Vec::new(), pk_col, pk_index: EqKeyMap::default() }
    }

    /// Appends a row, validating arity and maintaining the PK index.
    pub fn insert(&mut self, row: Row) -> SqlResult<()> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Schema(format!(
                "insert into {} expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        if let Some(pk) = self.pk_col {
            self.pk_index.insert(&row[pk], self.rows.len());
        }
        self.rows.push(row);
        Ok(())
    }

    /// The stored rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Position of the single-column primary key, if the schema declares one.
    pub fn primary_key_column(&self) -> Option<usize> {
        self.pk_col
    }

    /// Row positions whose primary key is `sql_cmp`-equal to `v`, ascending.
    ///
    /// `None` when the table has no single-column primary key to index —
    /// callers fall back to a full scan.
    pub fn pk_lookup(&self, v: &Value) -> Option<Vec<usize>> {
        self.pk_col?;
        Some(self.pk_index.probe(v))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct values of a column, in first-seen order, capped at `limit`.
    pub fn distinct_values(&self, column: &str, limit: usize) -> SqlResult<Vec<Value>> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", self.schema.name, column)))?;
        let mut seen: Vec<Value> = Vec::new();
        for row in &self.rows {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            if !seen.iter().any(|s| s.grouping_eq(v)) {
                seen.push(v.clone());
                if seen.len() >= limit {
                    break;
                }
            }
        }
        Ok(seen)
    }
}

/// An in-memory database: a named collection of tables plus the schema-level
/// metadata (foreign keys, descriptions).
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Database { schema: DatabaseSchema::new(name), tables: BTreeMap::new() }
    }

    /// Creates a database from a pre-built schema, with empty tables.
    pub fn from_schema(schema: DatabaseSchema) -> Self {
        let mut tables = BTreeMap::new();
        for t in &schema.tables {
            tables.insert(t.name.to_ascii_lowercase(), Table::new(t.clone()));
        }
        Database { schema, tables }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// The full schema (tables, columns, foreign keys, descriptions).
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Registers a new (empty) table.
    pub fn create_table(&mut self, schema: TableSchema) -> SqlResult<()> {
        self.schema.add_table(schema.clone())?;
        self.tables.insert(schema.name.to_ascii_lowercase(), Table::new(schema));
        Ok(())
    }

    /// Adds a foreign-key edge to the schema.
    pub fn add_foreign_key(&mut self, fk: crate::schema::ForeignKey) {
        self.schema.add_foreign_key(fk);
    }

    /// Immutable access to a table by case-insensitive name.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table by case-insensitive name.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> SqlResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> SqlResult<()> {
        let t = self.table_mut(table)?;
        for r in rows {
            t.insert(r)?;
        }
        Ok(())
    }

    /// Names of every table.
    pub fn table_names(&self) -> Vec<String> {
        self.schema.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn client_table() -> TableSchema {
        TableSchema::new(
            "client",
            vec![
                ColumnDef::new("client_id", DataType::Integer).primary_key(),
                ColumnDef::new("gender", DataType::Text),
                ColumnDef::new("birth_date", DataType::Date),
            ],
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        db.insert("client", vec![1.into(), "F".into(), "1970-01-01".into()]).unwrap();
        let err = db.insert("client", vec![2.into(), "M".into()]).unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
        assert_eq!(db.table("client").unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new("x");
        assert!(matches!(db.table("nope"), Err(SqlError::UnknownTable(_))));
    }

    #[test]
    fn distinct_values_skip_nulls_and_duplicates() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        for (i, g) in ["F", "M", "F", "M", "F"].iter().enumerate() {
            db.insert("client", vec![(i as i64).into(), (*g).into(), Value::Null]).unwrap();
        }
        db.insert("client", vec![99.into(), Value::Null, Value::Null]).unwrap();
        let vals = db.table("client").unwrap().distinct_values("gender", 10).unwrap();
        assert_eq!(vals, vec![Value::text("F"), Value::text("M")]);
    }

    #[test]
    fn distinct_values_respects_limit() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        for i in 0..50 {
            db.insert("client", vec![i.into(), format!("g{i}").into(), Value::Null]).unwrap();
        }
        let vals = db.table("client").unwrap().distinct_values("gender", 5).unwrap();
        assert_eq!(vals.len(), 5);
    }

    #[test]
    fn from_schema_builds_all_tables() {
        let mut schema = DatabaseSchema::new("db");
        schema.add_table(client_table()).unwrap();
        let db = Database::from_schema(schema);
        assert!(db.table("client").unwrap().is_empty());
        assert_eq!(db.table_names(), vec!["client".to_string()]);
    }

    #[test]
    fn eq_key_map_null_keys_never_match() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::Null, 0);
        m.insert(&Value::Integer(1), 1);
        assert_eq!(m.len(), 1, "NULL keys are not stored");
        assert!(m.probe(&Value::Null).is_empty(), "NULL probes match nothing, not even NULL");
        assert_eq!(m.probe(&Value::Integer(1)), vec![1]);
    }

    #[test]
    fn eq_key_map_integer_real_cross_match() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::Integer(2), 0);
        m.insert(&Value::Real(2.0), 1);
        m.insert(&Value::Real(-0.0), 2);
        assert_eq!(m.probe(&Value::Integer(2)), vec![0, 1]);
        assert_eq!(m.probe(&Value::Real(2.0)), vec![0, 1]);
        // -0.0 and 0.0 compare equal under sql_cmp, so they share a bucket.
        assert_eq!(m.probe(&Value::Integer(0)), vec![2]);
        assert_eq!(m.probe(&Value::Real(0.0)), vec![2]);
    }

    #[test]
    fn eq_key_map_numeric_text_matches_sql_cmp() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::text("2"), 0);
        m.insert(&Value::text("2.0"), 1);
        m.insert(&Value::Integer(2), 2);
        m.insert(&Value::text("abc"), 3);
        // Numbers compare numerically against numeric-looking text...
        assert_eq!(m.probe(&Value::Integer(2)), vec![0, 1, 2]);
        // ...but text compares byte-exact against text: '2' matches the
        // stored '2' and the number, never '2.0'.
        assert_eq!(m.probe(&Value::text("2")), vec![0, 2]);
        assert_eq!(m.probe(&Value::text("2.0")), vec![1, 2]);
        // Non-numeric text only matches exactly.
        assert_eq!(m.probe(&Value::text("abc")), vec![3]);
        assert!(m.probe(&Value::text("ab")).is_empty());
    }

    #[test]
    fn eq_key_map_probe_order_is_ascending() {
        let mut m = EqKeyMap::default();
        for i in 0..5 {
            m.insert(&Value::Integer(7), i);
        }
        m.insert(&Value::text("7"), 5);
        assert_eq!(m.probe(&Value::Integer(7)), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pk_lookup_uses_index() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        for i in 0..10i64 {
            db.insert("client", vec![i.into(), "F".into(), Value::Null]).unwrap();
        }
        let t = db.table("client").unwrap();
        assert_eq!(t.primary_key_column(), Some(0));
        assert_eq!(t.pk_lookup(&Value::Integer(7)), Some(vec![7]));
        assert_eq!(t.pk_lookup(&Value::Integer(99)), Some(vec![]));
        assert_eq!(t.pk_lookup(&Value::Null), Some(vec![]));
    }

    #[test]
    fn pk_lookup_absent_without_single_pk() {
        let mut db = Database::new("d");
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", DataType::Integer), ColumnDef::new("b", DataType::Text)],
        ))
        .unwrap();
        db.insert("t", vec![1.into(), "x".into()]).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.primary_key_column(), None);
        assert!(t.pk_lookup(&Value::Integer(1)).is_none());
    }
}
