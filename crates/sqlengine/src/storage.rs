//! Row storage: in-memory tables and databases, plus the hash indexes the
//! physical planner uses for primary-key point lookups and hash joins.

use std::collections::{BTreeMap, HashMap};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use seed_retrieval::bm25::{Bm25Index, SearchHit};

use crate::chunk::{chunk_rows, DataChunk, BATCH_SIZE};
use crate::error::{SqlError, SqlResult};
use crate::schema::{DatabaseSchema, TableSchema};
use crate::value::Value;

/// Row positions returned by a hash probe.
///
/// The common probe resolves to a single pre-sorted bucket inside the map,
/// which is returned by reference; only probes that have to merge several
/// stores (numeric text, NaN corner cases) allocate. Dereferences to
/// `&[usize]`, ascending.
#[derive(Debug, Clone)]
pub enum ProbeHits<'a> {
    /// A borrowed bucket, already in ascending row order.
    Borrowed(&'a [usize]),
    /// A merged result owned by the probe.
    Owned(Vec<usize>),
}

impl Deref for ProbeHits<'_> {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        match self {
            ProbeHits::Borrowed(s) => s,
            ProbeHits::Owned(v) => v,
        }
    }
}

impl ProbeHits<'_> {
    /// The matching row positions, ascending.
    pub fn as_slice(&self) -> &[usize] {
        self
    }
}

/// A single row of values, positionally aligned with the table schema.
pub type Row = Vec<Value>;

/// A multimap from SQL values to row positions whose probe semantics match
/// [`Value::sql_cmp`] equality exactly.
///
/// `sql_cmp` equality is not an equivalence relation — `2 = '2'` and
/// `2 = '2.0'` but `'2' <> '2.0'` — so a single hash key cannot represent
/// it. The map therefore keeps layered stores:
///
/// * finite numbers, hashed by normalized `f64` bits (`-0.0` folded into
///   `0.0`);
/// * text, hashed byte-exact;
/// * a side list of text entries that parse as numbers, scanned linearly
///   when probing with a number (empty for typical corpora, so probes stay
///   O(1));
/// * NaN corner-case lists: under `sql_cmp`'s `partial_cmp` fallback a NaN
///   compares *equal* to every number, so NaN-keyed rows join every numeric
///   probe and a NaN probe joins every numeric row.
///
/// `NULL` keys are never stored and never match — SQL three-valued logic
/// makes `NULL = NULL` unknown, which a join treats as false.
#[derive(Debug, Clone, Default)]
pub struct EqKeyMap {
    /// Finite `Integer`/`Real` rows by normalized bit pattern.
    num: HashMap<u64, Vec<usize>>,
    /// Every `Integer`/`Real` row (including NaN), for NaN probes.
    all_num_rows: Vec<usize>,
    /// `Real` rows whose value is NaN.
    nan_num_rows: Vec<usize>,
    /// Text rows by exact content.
    text: HashMap<String, Vec<usize>>,
    /// Text rows whose content parses as a finite number.
    numeric_texts: Vec<(f64, usize)>,
    /// Text rows whose content parses as NaN.
    nan_text_rows: Vec<usize>,
    len: usize,
}

/// Normalizes a float for key hashing: `-0.0` and `0.0` compare equal under
/// `sql_cmp`, so they must share a bucket.
fn num_key_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Inserts `row` into an ascending position list, preserving order. Appends
/// in O(1) when `row` is past the current tail (the scan-order bulk-load
/// case); mid-list insertions (incremental UPDATE maintenance) binary-search
/// for the slot.
fn push_sorted(rows: &mut Vec<usize>, row: usize) {
    match rows.last() {
        Some(&last) if last >= row => {
            let i = rows.partition_point(|&r| r < row);
            rows.insert(i, row);
        }
        _ => rows.push(row),
    }
}

/// Removes one occurrence of `row` from an ascending position list.
fn drop_sorted(rows: &mut Vec<usize>, row: usize) {
    if let Ok(i) = rows.binary_search(&row) {
        rows.remove(i);
    }
}

/// Rewrites an ascending position list through a compaction map (`None`
/// drops the entry). Compaction maps are monotonic, so ascending order is
/// preserved.
fn remap_sorted(rows: &mut Vec<usize>, old_to_new: &[Option<usize>]) {
    let mut keep = 0;
    for i in 0..rows.len() {
        if let Some(new) = old_to_new[rows[i]] {
            rows[keep] = new;
            keep += 1;
        }
    }
    rows.truncate(keep);
}

impl EqKeyMap {
    /// Records `row` under key `v`. `NULL` keys are dropped (they can never
    /// match). Rows may be inserted at any position; every internal list is
    /// kept in ascending row order so probes preserve scan order.
    pub fn insert(&mut self, v: &Value, row: usize) {
        match v {
            Value::Null => return,
            Value::Integer(i) => {
                push_sorted(self.num.entry(num_key_bits(*i as f64)).or_default(), row);
                push_sorted(&mut self.all_num_rows, row);
            }
            Value::Real(r) => {
                if r.is_nan() {
                    push_sorted(&mut self.nan_num_rows, row);
                } else {
                    push_sorted(self.num.entry(num_key_bits(*r)).or_default(), row);
                }
                push_sorted(&mut self.all_num_rows, row);
            }
            Value::Text(s) => {
                push_sorted(self.text.entry(s.clone()).or_default(), row);
                match s.parse::<f64>() {
                    Ok(x) if x.is_nan() => push_sorted(&mut self.nan_text_rows, row),
                    Ok(x) => {
                        let i = self.numeric_texts.partition_point(|&(_, r)| r < row);
                        self.numeric_texts.insert(i, (x, row));
                    }
                    Err(_) => {}
                }
            }
        }
        self.len += 1;
    }

    /// Removes the entry recorded for `(v, row)` — the exact inverse of
    /// [`EqKeyMap::insert`] with the same arguments. `NULL` keys were never
    /// stored, so removing one is a no-op. The incremental UPDATE path uses
    /// remove + insert to move a row between buckets without rebuilding the
    /// map.
    pub fn remove(&mut self, v: &Value, row: usize) {
        match v {
            Value::Null => return,
            Value::Integer(i) => {
                let key = num_key_bits(*i as f64);
                if let Some(b) = self.num.get_mut(&key) {
                    drop_sorted(b, row);
                    if b.is_empty() {
                        self.num.remove(&key);
                    }
                }
                drop_sorted(&mut self.all_num_rows, row);
            }
            Value::Real(r) => {
                if r.is_nan() {
                    drop_sorted(&mut self.nan_num_rows, row);
                } else {
                    let key = num_key_bits(*r);
                    if let Some(b) = self.num.get_mut(&key) {
                        drop_sorted(b, row);
                        if b.is_empty() {
                            self.num.remove(&key);
                        }
                    }
                }
                drop_sorted(&mut self.all_num_rows, row);
            }
            Value::Text(s) => {
                if let Some(b) = self.text.get_mut(s) {
                    drop_sorted(b, row);
                    if b.is_empty() {
                        self.text.remove(s);
                    }
                }
                match s.parse::<f64>() {
                    Ok(x) if x.is_nan() => drop_sorted(&mut self.nan_text_rows, row),
                    Ok(_) => {
                        if let Some(i) = self.numeric_texts.iter().position(|&(_, r)| r == row) {
                            self.numeric_texts.remove(i);
                        }
                    }
                    Err(_) => {}
                }
            }
        }
        self.len -= 1;
    }

    /// Rewrites every stored row position through a monotonic compaction map
    /// (`old_to_new[old] = Some(new)` keeps a row at its shifted position,
    /// `None` drops it) — the incremental DELETE maintenance path. One O(n)
    /// pass over the stored entries; no key is rehashed and no text is
    /// recloned, which is what makes this cheaper than rebuilding.
    pub fn remap(&mut self, old_to_new: &[Option<usize>]) {
        for b in self.num.values_mut() {
            remap_sorted(b, old_to_new);
        }
        self.num.retain(|_, b| !b.is_empty());
        remap_sorted(&mut self.all_num_rows, old_to_new);
        remap_sorted(&mut self.nan_num_rows, old_to_new);
        for b in self.text.values_mut() {
            remap_sorted(b, old_to_new);
        }
        self.text.retain(|_, b| !b.is_empty());
        self.numeric_texts.retain_mut(|e| match old_to_new[e.1] {
            Some(new) => {
                e.1 = new;
                true
            }
            None => false,
        });
        remap_sorted(&mut self.nan_text_rows, old_to_new);
        // Every non-NULL entry lives in exactly one of the numeric or text
        // stores, so the surviving count is recomputable from those two.
        self.len = self.all_num_rows.len() + self.text.values().map(Vec::len).sum::<usize>();
    }

    /// Number of (non-NULL) entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row positions whose key is `sql_cmp`-equal to `v`, in ascending order
    /// (matching the emission order of a plain scan). A `NULL` probe matches
    /// nothing.
    ///
    /// When a single internal bucket answers the probe — the overwhelmingly
    /// common case, since numeric text and NaN keys are rare — the bucket is
    /// borrowed rather than copied; see [`ProbeHits`].
    pub fn probe(&self, v: &Value) -> ProbeHits<'_> {
        const EMPTY: &[usize] = &[];
        fn bucket(rows: Option<&Vec<usize>>) -> &[usize] {
            rows.map_or(EMPTY, Vec::as_slice)
        }
        match v {
            Value::Null => ProbeHits::Borrowed(EMPTY),
            Value::Integer(_) | Value::Real(_) => {
                let x = v.as_f64().expect("numeric value");
                if x.is_nan() {
                    // NaN compares equal to every number and numeric text.
                    let mut out = self.all_num_rows.clone();
                    out.extend(self.numeric_texts.iter().map(|(_, r)| *r));
                    out.extend_from_slice(&self.nan_text_rows);
                    out.sort_unstable();
                    ProbeHits::Owned(out)
                } else if self.numeric_texts.is_empty()
                    && self.nan_num_rows.is_empty()
                    && self.nan_text_rows.is_empty()
                {
                    ProbeHits::Borrowed(bucket(self.num.get(&num_key_bits(x))))
                } else {
                    let mut out: Vec<usize> = Vec::new();
                    out.extend_from_slice(bucket(self.num.get(&num_key_bits(x))));
                    out.extend(
                        self.numeric_texts.iter().filter(|(tx, _)| *tx == x).map(|(_, r)| *r),
                    );
                    out.extend_from_slice(&self.nan_num_rows);
                    out.extend_from_slice(&self.nan_text_rows);
                    out.sort_unstable();
                    ProbeHits::Owned(out)
                }
            }
            Value::Text(s) => {
                // Numeric-looking text compares numerically against numbers
                // (but byte-exact against other text).
                match s.parse::<f64>() {
                    Err(_) => ProbeHits::Borrowed(bucket(self.text.get(s))),
                    Ok(x) if x.is_nan() => {
                        let mut out: Vec<usize> = Vec::new();
                        out.extend_from_slice(bucket(self.text.get(s)));
                        out.extend_from_slice(&self.all_num_rows);
                        out.sort_unstable();
                        ProbeHits::Owned(out)
                    }
                    Ok(x) => {
                        let texts = bucket(self.text.get(s));
                        let nums = bucket(self.num.get(&num_key_bits(x)));
                        match (texts.is_empty(), nums.is_empty(), self.nan_num_rows.is_empty()) {
                            (true, true, true) => ProbeHits::Borrowed(EMPTY),
                            (false, true, true) => ProbeHits::Borrowed(texts),
                            (true, false, true) => ProbeHits::Borrowed(nums),
                            _ => {
                                let mut out: Vec<usize> = Vec::new();
                                out.extend_from_slice(texts);
                                out.extend_from_slice(nums);
                                out.extend_from_slice(&self.nan_num_rows);
                                out.sort_unstable();
                                ProbeHits::Owned(out)
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Hashes a grouping key component-wise into a normalized `u64`, or `None`
/// when the key cannot be hashed (a NaN component: under `total_cmp`'s
/// `partial_cmp` fallback NaN compares equal to *every* number, which breaks
/// the equivalence relation hashing requires).
///
/// Unlike `sql_cmp` equality (which [`EqKeyMap`] serves), the grouping
/// equality used by `GROUP BY`/`DISTINCT` — [`Value::grouping_eq`], i.e.
/// [`Value::total_cmp`]` == Equal` — *is* an equivalence relation for every
/// non-NaN value: NULL groups with NULL, integers and reals compare
/// numerically (`-0.0` folded into `0.0`, so `2` groups with `2.0`), text
/// compares byte-exact, and ranks never cross. Components are hashed
/// directly off the borrowed values — no per-probe allocation; grouping-equal
/// keys hash identically, and collisions between different keys are resolved
/// by the bucket's candidate list.
fn group_key_hash(key: &[Value]) -> Option<u64> {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in key {
        match v {
            Value::Null => h.write_u8(0),
            Value::Integer(i) => {
                h.write_u8(1);
                h.write_u64(num_key_bits(*i as f64));
            }
            Value::Real(r) if r.is_nan() => return None,
            Value::Real(r) => {
                h.write_u8(1);
                h.write_u64(num_key_bits(*r));
            }
            Value::Text(s) => {
                h.write_u8(2);
                s.hash(&mut h);
            }
        }
    }
    Some(h.finish())
}

/// True when two keys are component-wise [`Value::grouping_eq`].
fn group_keys_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.grouping_eq(y))
}

/// A map from multi-column grouping keys to dense group ids, with the exact
/// first-match semantics of the legacy linear scan
/// (`keys.iter().position(|k| k.grouping_eq-all(key))`) but O(1) per probe.
///
/// Keys are hashed component-wise into buckets of candidate group ids,
/// confirmed by a component-wise `grouping_eq` check — probing is
/// allocation-free. NaN components cannot be hashed (NaN groups with every
/// number under `total_cmp`), so NaN-containing keys live on a linear side
/// list and NaN probes fall back to a scan in group order — empty for real
/// corpora, so the hash path stays O(1). When a probe matches both a hashed
/// group and a NaN side group, the *earliest-inserted* group wins, which is
/// precisely what the linear reference returns.
#[derive(Debug, Clone, Default)]
pub struct GroupKeyMap {
    /// Key hash to candidate group ids (insertion order; almost always one).
    exact: HashMap<u64, Vec<usize>>,
    /// Ids of groups whose key contains a NaN, in insertion order.
    fuzzy: Vec<usize>,
    /// Every group's key, by id (also the NaN-probe fallback scan list).
    keys: Vec<Vec<Value>>,
}

impl GroupKeyMap {
    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no group has been inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Every group's key, indexed by group id (insertion order).
    pub fn keys(&self) -> &[Vec<Value>] {
        &self.keys
    }

    /// Read-only probe: the id of the group `key` belongs to, or `None` when
    /// no grouping-equal key has been inserted. Takes `&self`, so any number
    /// of threads may probe one frozen map concurrently (e.g. shared
    /// snapshots in `seed-serve`); construction-time mutation stays confined
    /// to [`GroupKeyMap::get_or_insert`]. Semantics match the mutating probe
    /// exactly, including the NaN side paths.
    pub fn lookup(&self, key: &[Value]) -> Option<usize> {
        match group_key_hash(key) {
            Some(hash) => {
                let exact_hit = self.exact.get(&hash).and_then(|bucket| {
                    bucket.iter().copied().find(|&g| group_keys_eq(&self.keys[g], key))
                });
                // A NaN-keyed group inserted earlier can also claim this key
                // (its NaN components group with any number); the earliest
                // matching group in insertion order wins.
                let fuzzy_hit =
                    self.fuzzy.iter().copied().find(|&g| group_keys_eq(&self.keys[g], key));
                match (exact_hit, fuzzy_hit) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                }
            }
            None => {
                // NaN in the probe key: it can group with any numeric key, so
                // scan all groups in insertion order (the reference order).
                (0..self.keys.len()).find(|&g| group_keys_eq(&self.keys[g], key))
            }
        }
    }

    /// True when a grouping-equal key has been inserted.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.lookup(key).is_some()
    }

    /// Returns the id of the group `key` belongs to, inserting a new group
    /// when no existing key is grouping-equal. The flag is `true` when the
    /// group was newly created. Ids are dense and assigned in first-seen
    /// order, matching the legacy linear scan exactly.
    pub fn get_or_insert(&mut self, key: &[Value]) -> (usize, bool) {
        if let Some(g) = self.lookup(key) {
            return (g, false);
        }
        let id = self.keys.len();
        match group_key_hash(key) {
            Some(hash) => self.exact.entry(hash).or_default().push(id),
            None => self.fuzzy.push(id),
        }
        self.keys.push(key.to_vec());
        (id, true)
    }

    /// Convenience for DISTINCT-style dedup: true when `key` had not been
    /// seen before (and records it).
    pub fn insert_if_new(&mut self, key: &[Value]) -> bool {
        self.get_or_insert(key).1
    }
}

/// A BM25 index over one column's text cells, with doc-id → row-position
/// mapping. Built (and incrementally maintained) by [`Table::text_index`];
/// NULLs and non-text cells are skipped, so document ids are dense over the
/// column's text rows and `row_of` translates them back to table positions.
#[derive(Debug, Clone, Default)]
pub struct ColumnTextIndex {
    index: Bm25Index,
    row_of: Vec<usize>,
}

impl ColumnTextIndex {
    fn build(col: usize, rows: &[Row]) -> Self {
        let mut out = ColumnTextIndex::default();
        out.extend(col, rows, 0);
        out
    }

    /// Indexes the text cells of `rows[from..]` — exactly what a fresh build
    /// does for the whole store, so incremental append maintenance is
    /// state-identical to a rebuild by construction.
    fn extend(&mut self, col: usize, rows: &[Row], from: usize) {
        for (pos, row) in rows.iter().enumerate().skip(from) {
            if let Value::Text(s) = &row[col] {
                self.index.add_document(s.clone());
                self.row_of.push(pos);
            }
        }
    }

    /// The underlying BM25 index (doc ids are dense text-row ordinals).
    pub fn bm25(&self) -> &Bm25Index {
        &self.index
    }

    /// Number of indexed documents (text cells).
    pub fn len(&self) -> usize {
        self.row_of.len()
    }

    /// True when the column holds no text cells.
    pub fn is_empty(&self) -> bool {
        self.row_of.is_empty()
    }

    /// Top-`k` BM25 search translated to `(row position, score)` pairs,
    /// best first.
    pub fn search(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        self.index
            .search(query, k)
            .into_iter()
            .map(|SearchHit { doc_id, score }| (self.row_of[doc_id], score))
            .collect()
    }
}

/// A cached per-column text index plus the table state it reflects.
#[derive(Debug, Clone)]
struct TextIndexEntry {
    /// Table generation the index was last synchronized at.
    built_at: u64,
    /// Number of table rows consumed (text or not) when synchronized.
    rows_seen: usize,
    index: Arc<ColumnTextIndex>,
}

/// An in-memory table: schema, row store, and (when the schema declares a
/// single-column primary key) a hash index over that key, maintained
/// incrementally on every mutation.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    /// Row store. Private so every mutation flows through [`Table::insert`],
    /// [`Table::update_rows`], or [`Table::delete_rows`], which keep the PK
    /// hash index, the columnar snapshot, and the text indexes in sync; read
    /// access is via [`Table::rows`].
    rows: Vec<Row>,
    pk_col: Option<usize>,
    pk_index: EqKeyMap,
    /// Mutation epoch: bumped once by every mutation entry point (`rows` is
    /// private, so every write flows through one). This is the table's
    /// *version* for snapshot bookkeeping — serve-side caches key entries by
    /// it, and distinct values witness distinct row stores. The columnar
    /// snapshot records the generation it was built at, and
    /// [`Table::columnar_chunks`] asserts the two still agree at every
    /// borrow, so a mutation path added without maintenance fails loudly
    /// instead of serving stale chunks.
    generation: u64,
    /// Generation of the most recent *non-append* mutation (UPDATE/DELETE).
    /// Text indexes built at or after this point can catch up by indexing
    /// only appended rows; older ones must rebuild (BM25 has no removal).
    reshaped_at: u64,
    /// Lazily built columnar snapshot of the row store, shared with every
    /// columnar scan ([`Table::columnar_chunks`]). Mutations maintain it
    /// *incrementally* when it exists — inserts re-transpose only the
    /// trailing partial chunk, updates only the chunks containing changed
    /// rows, deletes only the suffix from the first deleted position — and
    /// re-stamp it with the new generation, so a prepared statement cached
    /// across a commit re-snapshots instead of panicking. Cloning a table
    /// (database snapshots) shares the already-built chunks; they are
    /// immutable, so sharing is sound.
    chunks: OnceLock<(u64, Vec<Arc<DataChunk>>)>,
    /// Lazily built BM25 indexes per text column ([`Table::text_index`]),
    /// extended incrementally while mutations stay append-only and rebuilt
    /// per column otherwise.
    text_indexes: Mutex<HashMap<usize, TextIndexEntry>>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            pk_col: self.pk_col,
            pk_index: self.pk_index.clone(),
            generation: self.generation,
            reshaped_at: self.reshaped_at,
            chunks: self.chunks.clone(),
            // Entries hold Arc'd immutable indexes; sharing them is sound
            // (each copy revalidates against its own generation).
            text_indexes: Mutex::new(self.text_indexes.lock().clone()),
        }
    }
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        let pk_cols: Vec<usize> = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect();
        // Only single-column keys are indexed; composite keys fall back to scans.
        let pk_col = if pk_cols.len() == 1 { Some(pk_cols[0]) } else { None };
        Table {
            schema,
            rows: Vec::new(),
            pk_col,
            pk_index: EqKeyMap::default(),
            generation: 0,
            reshaped_at: 0,
            chunks: OnceLock::new(),
            text_indexes: Mutex::new(HashMap::new()),
        }
    }

    /// Appends a row, validating arity and maintaining the PK index. If a
    /// columnar snapshot exists, only the trailing partial chunk is
    /// re-transposed; full chunks before it are shared untouched.
    pub fn insert(&mut self, row: Row) -> SqlResult<()> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Schema(format!(
                "insert into {} expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        if let Some(pk) = self.pk_col {
            self.pk_index.insert(&row[pk], self.rows.len());
        }
        self.rows.push(row);
        self.generation += 1;
        self.rechunk_suffix(self.rows.len() - 1);
        Ok(())
    }

    /// Replaces whole rows in place: `changes` maps row positions to their
    /// new contents (each arity-validated). Positions are unchanged, so PK
    /// maintenance is a per-row remove + insert and only the chunks
    /// containing changed rows are re-transposed. Bumps the generation once
    /// per (non-empty) call.
    pub fn update_rows(&mut self, changes: Vec<(usize, Row)>) -> SqlResult<()> {
        if changes.is_empty() {
            return Ok(());
        }
        for (pos, row) in &changes {
            if *pos >= self.rows.len() {
                return Err(SqlError::Schema(format!(
                    "update position {pos} out of range for {} ({} rows)",
                    self.schema.name,
                    self.rows.len()
                )));
            }
            if row.len() != self.schema.columns.len() {
                return Err(SqlError::Schema(format!(
                    "update of {} expected {} values, got {}",
                    self.schema.name,
                    self.schema.columns.len(),
                    row.len()
                )));
            }
        }
        let dirty: Vec<usize> = changes.iter().map(|(p, _)| *p).collect();
        for (pos, row) in changes {
            if let Some(pk) = self.pk_col {
                self.pk_index.remove(&self.rows[pos][pk], pos);
                self.pk_index.insert(&row[pk], pos);
            }
            self.rows[pos] = row;
        }
        self.generation += 1;
        self.reshaped_at = self.generation;
        self.rechunk_at(&dirty);
        Ok(())
    }

    /// Deletes the rows at `positions` (strictly ascending, in range),
    /// compacting the row store. The PK index is remapped through the
    /// compaction in one pass — no key is rehashed — and the columnar
    /// snapshot is re-transposed only from the chunk containing the first
    /// deleted position. Bumps the generation once per (non-empty) call.
    pub fn delete_rows(&mut self, positions: &[usize]) -> SqlResult<()> {
        if positions.is_empty() {
            return Ok(());
        }
        for w in positions.windows(2) {
            if w[0] >= w[1] {
                return Err(SqlError::Schema(format!(
                    "delete positions for {} must be strictly ascending",
                    self.schema.name
                )));
            }
        }
        if *positions.last().expect("non-empty") >= self.rows.len() {
            return Err(SqlError::Schema(format!(
                "delete position {} out of range for {} ({} rows)",
                positions.last().expect("non-empty"),
                self.schema.name,
                self.rows.len()
            )));
        }
        let mut old_to_new: Vec<Option<usize>> = Vec::with_capacity(self.rows.len());
        let mut doomed = positions.iter().copied().peekable();
        let mut kept = 0usize;
        for old in 0..self.rows.len() {
            if doomed.peek() == Some(&old) {
                doomed.next();
                old_to_new.push(None);
            } else {
                old_to_new.push(Some(kept));
                kept += 1;
            }
        }
        let mut i = 0;
        self.rows.retain(|_| {
            let keep = old_to_new[i].is_some();
            i += 1;
            keep
        });
        self.pk_index.remap(&old_to_new);
        self.generation += 1;
        self.reshaped_at = self.generation;
        self.rechunk_suffix(positions[0]);
        Ok(())
    }

    /// Maintains the columnar snapshot after a mutation that left rows
    /// before `first_dirty_row` untouched at their positions: chunks fully
    /// below it are shared as-is, everything from its chunk on is
    /// re-transposed from the (already mutated) row store. Without a built
    /// snapshot this is a plain invalidation. Must run *after* the
    /// generation bump — the rebuilt snapshot is stamped with the new
    /// generation.
    fn rechunk_suffix(&mut self, first_dirty_row: usize) {
        let fresh = OnceLock::new();
        if let Some((_, old)) = self.chunks.get() {
            let keep = first_dirty_row / BATCH_SIZE;
            let mut chunks: Vec<Arc<DataChunk>> = old.iter().take(keep).cloned().collect();
            chunks.extend(
                chunk_rows(self.schema.columns.len(), &self.rows[keep * BATCH_SIZE..])
                    .into_iter()
                    .map(Arc::new),
            );
            let _ = fresh.set((self.generation, chunks));
        }
        self.chunks = fresh;
    }

    /// Maintains the columnar snapshot after in-place updates: only the
    /// chunks containing a dirty row are re-transposed; row count (and thus
    /// chunk layout) is unchanged. Must run after the generation bump.
    fn rechunk_at(&mut self, dirty_rows: &[usize]) {
        let fresh = OnceLock::new();
        if let Some((_, old)) = self.chunks.get() {
            let mut chunks = old.clone();
            let mut dirty: Vec<usize> = dirty_rows.iter().map(|p| p / BATCH_SIZE).collect();
            dirty.sort_unstable();
            dirty.dedup();
            let width = self.schema.columns.len();
            for c in dirty {
                let lo = c * BATCH_SIZE;
                let hi = (lo + BATCH_SIZE).min(self.rows.len());
                let rebuilt = chunk_rows(width, &self.rows[lo..hi]);
                chunks[c] = Arc::new(rebuilt.into_iter().next().expect("non-empty chunk range"));
            }
            let _ = fresh.set((self.generation, chunks));
        }
        self.chunks = fresh;
    }

    /// The BM25 text index over `column`, built lazily and cached per table
    /// state. While the table only sees appends, a cached index catches up
    /// by indexing just the appended rows (`add_document` is exactly how a
    /// fresh build ingests, so the result is state-identical to a rebuild);
    /// after an UPDATE/DELETE the column's index is rebuilt from scratch —
    /// BM25 corpus statistics have no removal path, and a rebuild is the
    /// only representation the differential oracle accepts.
    pub fn text_index(&self, column: &str) -> SqlResult<Arc<ColumnTextIndex>> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", self.schema.name, column)))?;
        let mut cache = self.text_indexes.lock();
        if let Some(e) = cache.get_mut(&col) {
            if e.built_at == self.generation {
                return Ok(e.index.clone());
            }
            if e.built_at >= self.reshaped_at {
                // Append-only since the index was built: extend a copy with
                // the new rows and re-cache.
                let mut idx = (*e.index).clone();
                idx.extend(col, &self.rows, e.rows_seen);
                e.index = Arc::new(idx);
                e.built_at = self.generation;
                e.rows_seen = self.rows.len();
                return Ok(e.index.clone());
            }
        }
        let built = Arc::new(ColumnTextIndex::build(col, &self.rows));
        cache.insert(
            col,
            TextIndexEntry {
                built_at: self.generation,
                rows_seen: self.rows.len(),
                index: built.clone(),
            },
        );
        Ok(built)
    }

    /// The table's mutation epoch — distinct values witness distinct row
    /// stores. Exposed so tests can pin the snapshot-invalidation contract.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The table as a columnar snapshot: `BATCH_SIZE`-row [`DataChunk`]s in
    /// insertion order, built once per table state and shared by reference
    /// thereafter. This is what makes repeated columnar scans cheap — the
    /// row store is transposed (every cell cloned) only on the first scan
    /// after a write, not on every execution.
    pub fn columnar_chunks(&self) -> Vec<Arc<DataChunk>> {
        let (built_at, chunks) = self.chunks.get_or_init(|| {
            (
                self.generation,
                chunk_rows(self.schema.columns.len(), &self.rows)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
            )
        });
        // A snapshot surviving a mutation means some write path skipped the
        // invalidation in `insert` — refuse to serve it.
        assert_eq!(
            *built_at, self.generation,
            "stale columnar snapshot for table {}: built at generation {} but table is at {}",
            self.schema.name, built_at, self.generation
        );
        chunks.clone()
    }

    /// The stored rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Position of the single-column primary key, if the schema declares one.
    pub fn primary_key_column(&self) -> Option<usize> {
        self.pk_col
    }

    /// Row positions whose primary key is `sql_cmp`-equal to `v`, ascending.
    ///
    /// `None` when the table has no single-column primary key to index —
    /// callers fall back to a full scan.
    pub fn pk_lookup(&self, v: &Value) -> Option<ProbeHits<'_>> {
        self.pk_col?;
        Some(self.pk_index.probe(v))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct values of a column, in first-seen order, capped at `limit`.
    pub fn distinct_values(&self, column: &str, limit: usize) -> SqlResult<Vec<Value>> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", self.schema.name, column)))?;
        let mut seen = GroupKeyMap::default();
        let mut out: Vec<Value> = Vec::new();
        for row in &self.rows {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            if seen.insert_if_new(std::slice::from_ref(v)) {
                out.push(v.clone());
                if out.len() >= limit {
                    break;
                }
            }
        }
        Ok(out)
    }
}

/// An in-memory database: a named collection of tables plus the schema-level
/// metadata (foreign keys, descriptions).
///
/// Tables are held behind [`Arc`], which makes `Database::clone` a
/// *snapshot* operation: the schema and the table map are copied, but every
/// table's row store, indexes, and columnar chunks are shared. A commit
/// clones the database, mutates only the touched tables through
/// [`Database::table_mut`] (copy-on-write via [`Arc::make_mut`]), and
/// publishes the clone — readers holding the original see nothing change.
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    tables: BTreeMap<String, Arc<Table>>,
    /// Snapshot epoch: bumped once per committed mutation batch by the
    /// commit path ([`Database::bump_version`]). Orthogonal to per-table
    /// generations — caches that want per-table invalidation key by
    /// [`Table::generation`] instead.
    version: u64,
}

impl Database {
    /// Creates an empty database with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Database { schema: DatabaseSchema::new(name), tables: BTreeMap::new(), version: 0 }
    }

    /// Creates a database from a pre-built schema, with empty tables.
    pub fn from_schema(schema: DatabaseSchema) -> Self {
        let mut tables = BTreeMap::new();
        for t in &schema.tables {
            tables.insert(t.name.to_ascii_lowercase(), Arc::new(Table::new(t.clone())));
        }
        Database { schema, tables, version: 0 }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// The full schema (tables, columns, foreign keys, descriptions).
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The snapshot epoch: how many commits produced this state. Stays 0 for
    /// databases mutated directly (bulk loads); the commit path bumps it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advances the snapshot epoch by one, returning the new value. Called
    /// by the commit path when publishing a new snapshot.
    pub fn bump_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// A stable fingerprint of the current versions (generations) of the
    /// named tables: equal fingerprints witness that every listed table is
    /// at the same version in both snapshots. Version-keyed caches use this
    /// as the data-dependency component of their keys, so entries keep
    /// hitting across snapshots that did not touch a statement's tables and
    /// miss as soon as one did. Unknown tables hash as a sentinel (a later
    /// `CREATE TABLE` changes the fingerprint).
    pub fn dependency_fingerprint(&self, tables: &[String]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for name in tables {
            name.hash(&mut h);
            match self.table(name) {
                Ok(t) => t.generation().hash(&mut h),
                Err(_) => u64::MAX.hash(&mut h),
            }
        }
        h.finish()
    }

    /// Registers a new (empty) table.
    pub fn create_table(&mut self, schema: TableSchema) -> SqlResult<()> {
        self.schema.add_table(schema.clone())?;
        self.tables.insert(schema.name.to_ascii_lowercase(), Arc::new(Table::new(schema)));
        Ok(())
    }

    /// Adds a foreign-key edge to the schema.
    pub fn add_foreign_key(&mut self, fk: crate::schema::ForeignKey) {
        self.schema.add_foreign_key(fk);
    }

    /// Immutable access to a table by case-insensitive name.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|t| t.as_ref())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// The shared handle of a table by case-insensitive name. `Arc::ptr_eq`
    /// on two snapshots' handles witnesses whether the table was
    /// copy-on-write-cloned between them — the COW-granularity contract the
    /// snapshot proptests pin.
    pub fn table_arc(&self, name: &str) -> SqlResult<&Arc<Table>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table by case-insensitive name. On a snapshot
    /// whose table is shared with other snapshots this is the copy-on-write
    /// point: the table (rows, indexes) is deep-cloned once, leaving every
    /// other snapshot untouched.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> SqlResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> SqlResult<()> {
        let t = self.table_mut(table)?;
        for r in rows {
            t.insert(r)?;
        }
        Ok(())
    }

    /// Names of every table.
    pub fn table_names(&self) -> Vec<String> {
        self.schema.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn client_table() -> TableSchema {
        TableSchema::new(
            "client",
            vec![
                ColumnDef::new("client_id", DataType::Integer).primary_key(),
                ColumnDef::new("gender", DataType::Text),
                ColumnDef::new("birth_date", DataType::Date),
            ],
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        db.insert("client", vec![1.into(), "F".into(), "1970-01-01".into()]).unwrap();
        let err = db.insert("client", vec![2.into(), "M".into()]).unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
        assert_eq!(db.table("client").unwrap().len(), 1);
    }

    #[test]
    fn columnar_snapshot_invalidates_on_insert_and_generation_tracks_writes() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        db.insert("client", vec![1.into(), "F".into(), Value::Null]).unwrap();
        let t = db.table("client").unwrap();
        assert_eq!(t.generation(), 1);
        let before = t.columnar_chunks();
        assert_eq!(before[0].rows(), 1);
        // Same generation → the snapshot is served by reference, not rebuilt.
        let again = t.columnar_chunks();
        assert!(Arc::ptr_eq(&before[0], &again[0]));
        db.insert("client", vec![2.into(), "M".into(), Value::Null]).unwrap();
        let t = db.table("client").unwrap();
        assert_eq!(t.generation(), 2, "every insert bumps the epoch");
        let after = t.columnar_chunks();
        assert_eq!(after[0].rows(), 2, "post-insert snapshot sees the new row");
        assert!(!Arc::ptr_eq(&before[0], &after[0]), "mutation discarded the cached snapshot");
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new("x");
        assert!(matches!(db.table("nope"), Err(SqlError::UnknownTable(_))));
    }

    #[test]
    fn distinct_values_skip_nulls_and_duplicates() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        for (i, g) in ["F", "M", "F", "M", "F"].iter().enumerate() {
            db.insert("client", vec![(i as i64).into(), (*g).into(), Value::Null]).unwrap();
        }
        db.insert("client", vec![99.into(), Value::Null, Value::Null]).unwrap();
        let vals = db.table("client").unwrap().distinct_values("gender", 10).unwrap();
        assert_eq!(vals, vec![Value::text("F"), Value::text("M")]);
    }

    #[test]
    fn distinct_values_respects_limit() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        for i in 0..50 {
            db.insert("client", vec![i.into(), format!("g{i}").into(), Value::Null]).unwrap();
        }
        let vals = db.table("client").unwrap().distinct_values("gender", 5).unwrap();
        assert_eq!(vals.len(), 5);
    }

    #[test]
    fn from_schema_builds_all_tables() {
        let mut schema = DatabaseSchema::new("db");
        schema.add_table(client_table()).unwrap();
        let db = Database::from_schema(schema);
        assert!(db.table("client").unwrap().is_empty());
        assert_eq!(db.table_names(), vec!["client".to_string()]);
    }

    #[test]
    fn eq_key_map_null_keys_never_match() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::Null, 0);
        m.insert(&Value::Integer(1), 1);
        assert_eq!(m.len(), 1, "NULL keys are not stored");
        assert!(m.probe(&Value::Null).is_empty(), "NULL probes match nothing, not even NULL");
        assert_eq!(m.probe(&Value::Integer(1)).as_slice(), &[1]);
    }

    #[test]
    fn eq_key_map_integer_real_cross_match() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::Integer(2), 0);
        m.insert(&Value::Real(2.0), 1);
        m.insert(&Value::Real(-0.0), 2);
        assert_eq!(m.probe(&Value::Integer(2)).as_slice(), &[0, 1]);
        assert_eq!(m.probe(&Value::Real(2.0)).as_slice(), &[0, 1]);
        // -0.0 and 0.0 compare equal under sql_cmp, so they share a bucket.
        assert_eq!(m.probe(&Value::Integer(0)).as_slice(), &[2]);
        assert_eq!(m.probe(&Value::Real(0.0)).as_slice(), &[2]);
        // No numeric text and no NaNs stored: probes borrow the bucket.
        assert!(matches!(m.probe(&Value::Integer(2)), ProbeHits::Borrowed(_)));
    }

    #[test]
    fn eq_key_map_numeric_text_matches_sql_cmp() {
        let mut m = EqKeyMap::default();
        m.insert(&Value::text("2"), 0);
        m.insert(&Value::text("2.0"), 1);
        m.insert(&Value::Integer(2), 2);
        m.insert(&Value::text("abc"), 3);
        // Numbers compare numerically against numeric-looking text...
        assert_eq!(m.probe(&Value::Integer(2)).as_slice(), &[0, 1, 2]);
        // ...but text compares byte-exact against text: '2' matches the
        // stored '2' and the number, never '2.0'.
        assert_eq!(m.probe(&Value::text("2")).as_slice(), &[0, 2]);
        assert_eq!(m.probe(&Value::text("2.0")).as_slice(), &[1, 2]);
        // Non-numeric text only matches exactly, borrowing its bucket.
        assert_eq!(m.probe(&Value::text("abc")).as_slice(), &[3]);
        assert!(matches!(m.probe(&Value::text("abc")), ProbeHits::Borrowed(_)));
        assert!(m.probe(&Value::text("ab")).is_empty());
    }

    #[test]
    fn eq_key_map_probe_order_is_ascending() {
        let mut m = EqKeyMap::default();
        for i in 0..5 {
            m.insert(&Value::Integer(7), i);
        }
        m.insert(&Value::text("7"), 5);
        assert_eq!(m.probe(&Value::Integer(7)).as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pk_lookup_uses_index() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        for i in 0..10i64 {
            db.insert("client", vec![i.into(), "F".into(), Value::Null]).unwrap();
        }
        let t = db.table("client").unwrap();
        assert_eq!(t.primary_key_column(), Some(0));
        assert_eq!(t.pk_lookup(&Value::Integer(7)).unwrap().as_slice(), &[7]);
        assert!(t.pk_lookup(&Value::Integer(99)).unwrap().is_empty());
        assert!(t.pk_lookup(&Value::Null).unwrap().is_empty());
    }

    #[test]
    fn group_key_map_first_seen_ids_and_cross_type_numbers() {
        let mut m = GroupKeyMap::default();
        assert_eq!(m.get_or_insert(&[Value::Integer(2), Value::text("a")]), (0, true));
        // 2.0 groups with 2; -0.0 with 0; NULL with NULL.
        assert_eq!(m.get_or_insert(&[Value::Real(2.0), Value::text("a")]), (0, false));
        assert_eq!(m.get_or_insert(&[Value::Null, Value::Null]), (1, true));
        assert_eq!(m.get_or_insert(&[Value::Null, Value::Null]), (1, false));
        assert_eq!(m.get_or_insert(&[Value::Real(-0.0), Value::text("a")]), (2, true));
        assert_eq!(m.get_or_insert(&[Value::Integer(0), Value::text("a")]), (2, false));
        // Text is byte-exact: '2' never groups with 2.
        assert_eq!(m.get_or_insert(&[Value::text("2"), Value::text("a")]), (3, true));
        assert_eq!(m.len(), 4);
        assert_eq!(m.keys()[0], vec![Value::Integer(2), Value::text("a")]);
    }

    #[test]
    fn group_key_map_nan_matches_the_linear_reference() {
        // Under total_cmp NaN compares equal to every number, so a NaN key
        // must join the earliest numeric group — in either insertion order.
        let mut m = GroupKeyMap::default();
        assert_eq!(m.get_or_insert(&[Value::Real(5.0)]), (0, true));
        assert_eq!(m.get_or_insert(&[Value::Real(f64::NAN)]), (0, false));

        let mut m = GroupKeyMap::default();
        assert_eq!(m.get_or_insert(&[Value::Real(f64::NAN)]), (0, true));
        assert_eq!(m.get_or_insert(&[Value::Real(5.0)]), (0, false));
        assert_eq!(m.get_or_insert(&[Value::text("x")]), (1, true));
        assert_eq!(m.get_or_insert(&[Value::Null]), (2, true));
    }

    #[test]
    fn group_key_map_shared_lookup_matches_mutating_probe() {
        let mut m = GroupKeyMap::default();
        m.get_or_insert(&[Value::Integer(2), Value::text("a")]);
        m.get_or_insert(&[Value::Null]);
        m.get_or_insert(&[Value::Real(f64::NAN)]);
        // &self probes agree with the construction-time ids, including the
        // cross-type and NaN side paths.
        assert_eq!(m.lookup(&[Value::Real(2.0), Value::text("a")]), Some(0));
        assert_eq!(m.lookup(&[Value::Null]), Some(1));
        assert_eq!(m.lookup(&[Value::Real(7.5)]), Some(2), "NaN group claims every number");
        assert_eq!(m.lookup(&[Value::text("missing")]), None);
        assert!(m.contains(&[Value::Integer(2), Value::text("a")]));
        // A frozen map can be probed from many threads at once.
        let shared = std::sync::Arc::new(m);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || m.lookup(&[Value::Integer(2), Value::text("a")]))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(0));
        }
    }

    #[test]
    fn pk_lookup_absent_without_single_pk() {
        let mut db = Database::new("d");
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", DataType::Integer), ColumnDef::new("b", DataType::Text)],
        ))
        .unwrap();
        db.insert("t", vec![1.into(), "x".into()]).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.primary_key_column(), None);
        assert!(t.pk_lookup(&Value::Integer(1)).is_none());
    }
}
