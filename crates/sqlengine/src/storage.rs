//! Row storage: in-memory tables and databases.

use std::collections::BTreeMap;

use crate::error::{SqlError, SqlResult};
use crate::schema::{DatabaseSchema, TableSchema};
use crate::value::Value;

/// A single row of values, positionally aligned with the table schema.
pub type Row = Vec<Value>;

/// An in-memory table: schema plus row store.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// Appends a row, validating arity.
    pub fn insert(&mut self, row: Row) -> SqlResult<()> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Schema(format!(
                "insert into {} expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct values of a column, in first-seen order, capped at `limit`.
    pub fn distinct_values(&self, column: &str, limit: usize) -> SqlResult<Vec<Value>> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::UnknownColumn(format!("{}.{}", self.schema.name, column)))?;
        let mut seen: Vec<Value> = Vec::new();
        for row in &self.rows {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            if !seen.iter().any(|s| s.grouping_eq(v)) {
                seen.push(v.clone());
                if seen.len() >= limit {
                    break;
                }
            }
        }
        Ok(seen)
    }
}

/// An in-memory database: a named collection of tables plus the schema-level
/// metadata (foreign keys, descriptions).
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Database { schema: DatabaseSchema::new(name), tables: BTreeMap::new() }
    }

    /// Creates a database from a pre-built schema, with empty tables.
    pub fn from_schema(schema: DatabaseSchema) -> Self {
        let mut tables = BTreeMap::new();
        for t in &schema.tables {
            tables.insert(t.name.to_ascii_lowercase(), Table::new(t.clone()));
        }
        Database { schema, tables }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// The full schema (tables, columns, foreign keys, descriptions).
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Registers a new (empty) table.
    pub fn create_table(&mut self, schema: TableSchema) -> SqlResult<()> {
        self.schema.add_table(schema.clone())?;
        self.tables.insert(schema.name.to_ascii_lowercase(), Table::new(schema));
        Ok(())
    }

    /// Adds a foreign-key edge to the schema.
    pub fn add_foreign_key(&mut self, fk: crate::schema::ForeignKey) {
        self.schema.add_foreign_key(fk);
    }

    /// Immutable access to a table by case-insensitive name.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table by case-insensitive name.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> SqlResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> SqlResult<()> {
        let t = self.table_mut(table)?;
        for r in rows {
            t.insert(r)?;
        }
        Ok(())
    }

    /// Names of every table.
    pub fn table_names(&self) -> Vec<String> {
        self.schema.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn client_table() -> TableSchema {
        TableSchema::new(
            "client",
            vec![
                ColumnDef::new("client_id", DataType::Integer).primary_key(),
                ColumnDef::new("gender", DataType::Text),
                ColumnDef::new("birth_date", DataType::Date),
            ],
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        db.insert("client", vec![1.into(), "F".into(), "1970-01-01".into()]).unwrap();
        let err = db.insert("client", vec![2.into(), "M".into()]).unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
        assert_eq!(db.table("client").unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new("x");
        assert!(matches!(db.table("nope"), Err(SqlError::UnknownTable(_))));
    }

    #[test]
    fn distinct_values_skip_nulls_and_duplicates() {
        let mut db = Database::new("financial");
        db.create_table(client_table()).unwrap();
        for (i, g) in ["F", "M", "F", "M", "F"].iter().enumerate() {
            db.insert("client", vec![(i as i64).into(), (*g).into(), Value::Null]).unwrap();
        }
        db.insert("client", vec![99.into(), Value::Null, Value::Null]).unwrap();
        let vals = db.table("client").unwrap().distinct_values("gender", 10).unwrap();
        assert_eq!(vals, vec![Value::text("F"), Value::text("M")]);
    }

    #[test]
    fn distinct_values_respects_limit() {
        let mut db = Database::new("d");
        db.create_table(client_table()).unwrap();
        for i in 0..50 {
            db.insert("client", vec![i.into(), format!("g{i}").into(), Value::Null]).unwrap();
        }
        let vals = db.table("client").unwrap().distinct_values("gender", 5).unwrap();
        assert_eq!(vals.len(), 5);
    }

    #[test]
    fn from_schema_builds_all_tables() {
        let mut schema = DatabaseSchema::new("db");
        schema.add_table(client_table()).unwrap();
        let db = Database::from_schema(schema);
        assert!(db.table("client").unwrap().is_empty());
        assert_eq!(db.table_names(), vec!["client".to_string()]);
    }
}
