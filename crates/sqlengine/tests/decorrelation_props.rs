//! Conformance and property tests for subquery decorrelation.
//!
//! Every test triangulates three execution paths on the same query:
//!
//! 1. `PlanMode::Optimized` with the default [`PlanCache`] — correlated
//!    subqueries decorrelate into hash semi/anti/group joins;
//! 2. `PlanMode::Optimized` with [`PlanCache::without_decorrelation`] — the
//!    per-outer-row cached-plan path the rewrite replaced;
//! 3. `PlanMode::NestedLoop` — the legacy reference executor, which never
//!    decorrelates and never caches.
//!
//! All three must produce identical rows in identical order. The property
//! tests drive the triangle with random data drawn from the engine's nasty
//! value alphabet — NULL correlation keys, Integer/Real cross-typed keys,
//! numeric-looking text, duplicates — because those are exactly the places
//! where a hash-probe reimplementation of `sql_cmp` equality could drift
//! from the per-row reference.

use proptest::prelude::*;
use seed_sqlengine::{
    execute_select_with_plan_cache, parse_select, ColumnDef, DataType, Database, ExecStats,
    PlanCache, PlanMode, TableSchema, Value,
};

/// Decodes one generator character into a correlation-key value. NULL keys
/// must never match (three-valued logic), `2`/`2.0` must cross-match,
/// `'2'`/`'2.0'` are numeric-looking texts that match numbers but not each
/// other, and duplicates exercise the group-join memo.
fn decode(c: char) -> Value {
    match c {
        '0'..='4' => Value::Integer(c as i64 - '0' as i64),
        '5'..='9' => Value::Real((c as i64 - '5' as i64) as f64),
        'n' => Value::Null,
        't' => Value::text("2"),
        'T' => Value::text("2.0"),
        'x' => Value::text("x"),
        _ => Value::text(""),
    }
}

/// Builds outer table `o(id, k, v)` and inner table `i(id, k, v)` with the
/// decoded key streams and deterministic numeric payloads (every third inner
/// payload NULL, so aggregates see NULL arguments too).
fn two_tables(outer_keys: &str, inner_keys: &str) -> Database {
    let mut db = Database::new("decorr_props");
    for name in ["o", "i"] {
        db.create_table(TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("k", DataType::Text),
                ColumnDef::new("v", DataType::Real),
            ],
        ))
        .unwrap();
    }
    for (pos, c) in outer_keys.chars().enumerate() {
        db.insert("o", vec![(pos as i64).into(), decode(c), ((pos * 7 % 23) as f64).into()])
            .unwrap();
    }
    for (pos, c) in inner_keys.chars().enumerate() {
        let v = if pos % 3 == 0 { Value::Null } else { ((pos * 5 % 19) as f64).into() };
        db.insert("i", vec![(pos as i64).into(), decode(c), v]).unwrap();
    }
    db
}

/// The correlated query shapes under test: every rewritable position
/// (EXISTS, NOT EXISTS, IN, NOT IN, scalar aggregates in WHERE and in the
/// projection), plus residual predicates and multi-key correlation.
const QUERIES: &[&str] = &[
    "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE NOT EXISTS (SELECT 1 FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.k = o.k AND i.v > 5)",
    "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.k = o.k AND i.v = o.v)",
    "SELECT o.id FROM o WHERE o.v IN (SELECT i.v FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE o.v NOT IN (SELECT i.v FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE o.id IN (SELECT i.id FROM i WHERE i.k = o.k AND i.v > 3)",
    "SELECT o.id FROM o WHERE o.v > (SELECT AVG(i.v) FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE o.v < (SELECT SUM(i.v) FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE 1 < (SELECT COUNT(*) FROM i WHERE i.k = o.k)",
    "SELECT o.id FROM o WHERE o.v = (SELECT MIN(i.v) FROM i WHERE i.k = o.k)",
    "SELECT o.id, (SELECT COUNT(*) FROM i WHERE i.k = o.k) FROM o",
    "SELECT o.id, (SELECT MAX(i.v) - MIN(i.v) FROM i WHERE i.k = o.k) FROM o",
    "SELECT o.id, (SELECT COUNT(DISTINCT i.v) FROM i WHERE i.k = o.k) FROM o",
];

/// Runs one query through all three paths, asserts row identity, and
/// returns the decorrelated path's stats.
fn triangulate(db: &Database, sql: &str) -> ExecStats {
    let stmt = parse_select(sql).unwrap();
    let (decorr, stats, _) =
        execute_select_with_plan_cache(db, &stmt, PlanMode::Optimized, PlanCache::default())
            .unwrap();
    let (perrow, perrow_stats, _) = execute_select_with_plan_cache(
        db,
        &stmt,
        PlanMode::Optimized,
        PlanCache::without_decorrelation(),
    )
    .unwrap();
    let (legacy, _, _) =
        execute_select_with_plan_cache(db, &stmt, PlanMode::NestedLoop, PlanCache::default())
            .unwrap();
    assert_eq!(decorr.rows, legacy.rows, "decorrelated vs nested-loop: {sql}");
    assert_eq!(perrow.rows, legacy.rows, "per-row cached-plan vs nested-loop: {sql}");
    assert_eq!(perrow_stats.decorrelated_subqueries, 0, "disabled cache must not rewrite: {sql}");
    stats
}

#[test]
fn every_rewritable_shape_engages_and_matches_the_reference() {
    let db = two_tables("012341nttTx5", "0123nn5ttTx12");
    let outer_rows = 12;
    for sql in QUERIES {
        let stats = triangulate(&db, sql);
        assert_eq!(stats.decorrelated_subqueries, 1, "rewrite must engage: {sql}");
        assert_eq!(
            stats.decorrelated_probes + stats.decorrelated_memo_hits,
            outer_rows,
            "every outer row probes or hits the memo: {sql}"
        );
    }
}

#[test]
fn unrewritable_shapes_fall_back_and_still_match() {
    let db = two_tables("012341nttTx5", "0123nn5ttTx12");
    for sql in [
        // Non-equality correlation.
        "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.v > o.v)",
        // Correlation under OR.
        "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.k = o.k OR i.v > 9)",
        // LIMIT inside the subquery.
        "SELECT o.id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.k = o.k LIMIT 1)",
        // Scalar subquery without an aggregate (single-row errors must stay
        // per-row; this one returns at most one row per key by luck of id).
        "SELECT o.id FROM o WHERE o.id = (SELECT i.id FROM i WHERE i.k = o.k AND i.id = 4)",
    ] {
        let stats = triangulate(&db, sql);
        assert_eq!(stats.decorrelated_subqueries, 0, "must not rewrite: {sql}");
    }
}

#[test]
fn nested_subqueries_at_relocated_evaluation_sites_refuse_the_rewrite() {
    // Inner `i` has several rows, so the uncorrelated scalar subquery
    // `(SELECT i2.v FROM i AS i2)` errors ("more than one row") *if
    // evaluated*. Whether it is evaluated depends on the evaluation site:
    // the reference only reaches it for rows admitted by the correlation
    // equality (or per matched row, for an EXISTS projection), while a
    // rewrite would evaluate it on every build row — or never. These shapes
    // must therefore stay on the per-row path and agree with the reference
    // on both results *and* error status.
    let db = two_tables("0123", "5678");
    for sql in [
        // Residual conjunct containing a subquery: the reference's AND
        // short-circuit skips it whenever the correlation key mismatches.
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT 1 FROM i WHERE i.k = o.k AND (SELECT i2.v FROM i AS i2) > 0)",
        // EXISTS projection containing a subquery: evaluated per matched
        // row by the reference, discarded entirely by a semi join.
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT (SELECT i2.v FROM i AS i2) FROM i WHERE i.k = o.k)",
        // IN value column containing a subquery.
        "SELECT o.id FROM o WHERE o.v IN \
         (SELECT (SELECT i2.v FROM i AS i2) FROM i WHERE i.k = o.k)",
        // Aggregate argument containing a subquery.
        "SELECT o.id FROM o WHERE o.v > \
         (SELECT SUM((SELECT i2.v FROM i AS i2)) FROM i WHERE i.k = o.k)",
        // Residual conjunct containing an aggregate: always errors when
        // evaluated ("outside GROUP context"), but the reference's AND
        // short-circuit skips it for non-matching correlation keys.
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT 1 FROM i WHERE i.k = o.k AND SUM(i.v) > 0)",
        // Function calls can error too (unknown name / wrong arity): same
        // relocated-evaluation hazard for residuals and value columns.
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT 1 FROM i WHERE i.k = o.k AND NOSUCHFN(i.v) > 0)",
        "SELECT o.id FROM o WHERE o.v IN \
         (SELECT NOSUCHFN(i.v) FROM i WHERE i.k = o.k)",
        "SELECT o.id FROM o WHERE o.v > \
         (SELECT SUM(NOSUCHFN(i.v)) FROM i WHERE i.k = o.k)",
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT NOSUCHFN(i.v) FROM i WHERE i.k = o.k)",
    ] {
        let stmt = parse_select(sql).unwrap();
        let decorr =
            execute_select_with_plan_cache(&db, &stmt, PlanMode::Optimized, PlanCache::default());
        let legacy =
            execute_select_with_plan_cache(&db, &stmt, PlanMode::NestedLoop, PlanCache::default());
        match (decorr, legacy) {
            (Ok((a, stats, _)), Ok((b, _, _))) => {
                assert_eq!(a.rows, b.rows, "row divergence: {sql}");
                assert_eq!(stats.decorrelated_subqueries, 0, "must not rewrite: {sql}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!(
                "error-status divergence for {sql}: optimized {:?} vs nested-loop {:?}",
                a.map(|(rs, ..)| rs.rows),
                b.map(|(rs, ..)| rs.rows)
            ),
        }
    }
    // With no correlation-key overlap, the reference never evaluates the
    // erroring expression at all — the statement must succeed on the
    // (refused-rewrite) optimized path too. Only non-*pushable* residuals
    // qualify here: a pushable erroring conjunct (e.g. a bare function
    // call on the inner relation) is evaluated per scan row by predicate
    // pushdown in optimized mode regardless of decorrelation, which is the
    // engine's documented plan-dependent error behaviour.
    let disjoint = two_tables("0123", "xxxx");
    for sql in [
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT 1 FROM i WHERE i.k = o.k AND (SELECT i2.v FROM i AS i2) > 0)",
        "SELECT o.id FROM o WHERE EXISTS \
         (SELECT 1 FROM i WHERE i.k = o.k AND SUM(i.v) > 0)",
        "SELECT o.id FROM o WHERE o.v IN \
         (SELECT NOSUCHFN(i.v) FROM i WHERE i.k = o.k)",
    ] {
        let stmt = parse_select(sql).unwrap();
        let (rs, stats, _) = execute_select_with_plan_cache(
            &disjoint,
            &stmt,
            PlanMode::Optimized,
            PlanCache::default(),
        )
        .unwrap();
        assert!(rs.rows.is_empty(), "{sql}");
        assert_eq!(stats.decorrelated_subqueries, 0, "{sql}");
    }
}

#[test]
fn empty_build_side_answers_every_probe() {
    // No inner rows at all: EXISTS is false, NOT EXISTS true, COUNT(*) 0,
    // SUM/AVG NULL for every outer row — with a zero-row build.
    let db = two_tables("0123", "");
    for sql in QUERIES {
        let stats = triangulate(&db, sql);
        assert_eq!(stats.decorrelated_subqueries, 1, "rewrite engages even empty: {sql}");
    }
}

proptest! {
    /// The full query matrix stays row-identical across all three paths for
    /// arbitrary key streams (NULLs, cross-typed numbers, numeric text,
    /// duplicates) on both sides of the correlation.
    #[test]
    fn decorrelation_matches_reference_on_random_data(
        outer in "[0-9ntTx]{0,14}",
        inner in "[0-9ntTx]{0,20}",
    ) {
        let db = two_tables(&outer, &inner);
        for sql in QUERIES {
            triangulate(&db, sql);
        }
    }
}
