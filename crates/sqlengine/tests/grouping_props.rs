//! Property tests pinning the hash-based grouping machinery to the legacy
//! linear-scan semantics.
//!
//! `GroupKeyMap` replaced the O(n²) "scan every previously-seen key" loops
//! behind GROUP BY, DISTINCT, DISTINCT aggregates, and
//! `Table::distinct_values`. These properties drive both implementations
//! with random mixes of NULLs, cross-type numbers (`2` vs `2.0` vs `-0.0`),
//! NaNs, and texts (including numeric-looking ones), and require the exact
//! same group ids, group order, and dedup decisions — plus an executor-level
//! check that `GROUP BY`/`DISTINCT` results over such data match a reference
//! grouping computed independently.

use proptest::prelude::*;
use seed_sqlengine::{execute, ColumnDef, DataType, Database, GroupKeyMap, TableSchema, Value};

/// Decodes one generator character into a Value. The alphabet is chosen so
/// random strings exercise every grouping edge: NULL-groups-with-NULL,
/// Integer/Real cross-match, `-0.0`/`0.0` folding, NaN (which under
/// `total_cmp` groups with every number), byte-exact text, and
/// numeric-looking text that must *not* group with numbers.
fn decode(c: char) -> Value {
    match c {
        '0'..='9' => Value::Integer(c as i64 - '0' as i64 - 4),
        'n' | 'N' => Value::Null,
        'r' => Value::Real(2.0),
        'R' => Value::Real(-3.5),
        'z' => Value::Real(0.0),
        'Z' => Value::Real(-0.0),
        't' => Value::text("2"),
        'T' => Value::text("2.0"),
        'x' => Value::text("x"),
        'X' => Value::text("X"),
        'q' => Value::Real(f64::NAN),
        _ => Value::text(""),
    }
}

fn decode_all(s: &str) -> Vec<Value> {
    s.chars().map(decode).collect()
}

/// The legacy linear scan, verbatim: the first previously-seen key that is
/// component-wise `grouping_eq` claims the probe; otherwise a new group is
/// appended. Returns the same (group id, newly created) pairs the hash map
/// must produce.
fn reference_group_ids(keys: &[Vec<Value>]) -> Vec<(usize, bool)> {
    let mut seen: Vec<Vec<Value>> = Vec::new();
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let pos = seen
            .iter()
            .position(|k| k.len() == key.len() && k.iter().zip(key).all(|(a, b)| a.grouping_eq(b)));
        match pos {
            Some(i) => out.push((i, false)),
            None => {
                seen.push(key.clone());
                out.push((seen.len() - 1, true));
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn single_column_grouping_matches_linear_scan(s in "[0-9nNrRzZtTxXq ]{0,48}") {
        let values = decode_all(&s);
        let keys: Vec<Vec<Value>> = values.into_iter().map(|v| vec![v]).collect();
        let expected = reference_group_ids(&keys);
        let mut map = GroupKeyMap::default();
        for (key, want) in keys.iter().zip(&expected) {
            prop_assert_eq!(map.get_or_insert(key), *want);
        }
        prop_assert_eq!(map.len(), expected.iter().filter(|(_, new)| *new).count());
    }

    #[test]
    fn two_column_grouping_matches_linear_scan(s in "[0-9nNrRzZtTxXq ]{0,64}") {
        let values = decode_all(&s);
        let keys: Vec<Vec<Value>> = values.chunks_exact(2).map(|c| c.to_vec()).collect();
        let expected = reference_group_ids(&keys);
        let mut map = GroupKeyMap::default();
        for (key, want) in keys.iter().zip(&expected) {
            prop_assert_eq!(map.get_or_insert(key), *want);
        }
    }

    #[test]
    fn distinct_dedup_matches_linear_scan(s in "[0-9nNrRzZtTxXq ]{0,48}") {
        let values = decode_all(&s);
        let mut linear_seen: Vec<Value> = Vec::new();
        let mut map = GroupKeyMap::default();
        for v in &values {
            let linear_new = !linear_seen.iter().any(|u| u.grouping_eq(v));
            if linear_new {
                linear_seen.push(v.clone());
            }
            prop_assert_eq!(map.insert_if_new(std::slice::from_ref(v)), linear_new);
        }
    }

    #[test]
    fn executor_group_by_and_distinct_match_reference_grouping(s in "[0-9nNrRzZtTxX ]{1,40}") {
        // End to end through the SQL pipeline: GROUP BY and DISTINCT over a
        // random value column must reproduce the reference grouping's group
        // count, first-seen order, and per-group row counts. (NaN is left to
        // the map-level properties above: it cannot round-trip through SQL.)
        let values = decode_all(&s);
        let mut db = Database::new("prop");
        db.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("v", DataType::Text),
            ],
        ))
        .unwrap();
        for (i, v) in values.iter().enumerate() {
            db.insert("t", vec![Value::Integer(i as i64), v.clone()]).unwrap();
        }

        let keys: Vec<Vec<Value>> = values.iter().map(|v| vec![v.clone()]).collect();
        let ids = reference_group_ids(&keys);
        let group_count = ids.iter().filter(|(_, new)| *new).count();
        let mut sizes = vec![0usize; group_count];
        let mut firsts: Vec<Value> = Vec::new();
        for ((gid, new), key) in ids.iter().zip(&keys) {
            sizes[*gid] += 1;
            if *new {
                firsts.push(key[0].clone());
            }
        }

        let rs = execute(&db, "SELECT v, COUNT(*) FROM t GROUP BY v").unwrap();
        prop_assert_eq!(rs.rows.len(), group_count);
        for (row, (first, size)) in rs.rows.iter().zip(firsts.iter().zip(&sizes)) {
            prop_assert!(
                row[0].grouping_eq(first),
                "group order must be first-seen: {:?} vs {:?}", row[0], first
            );
            prop_assert_eq!(&row[1], &Value::Integer(*size as i64));
        }

        let rs = execute(&db, "SELECT DISTINCT v FROM t").unwrap();
        prop_assert_eq!(rs.rows.len(), group_count);
        for (row, first) in rs.rows.iter().zip(&firsts) {
            prop_assert!(row[0].grouping_eq(first));
        }
    }
}
