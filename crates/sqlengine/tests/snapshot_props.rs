//! Differential property tests for the versioned copy-on-write commit path.
//!
//! Every property pits the production commit path (`commit_statement`:
//! clone-and-COW the touched table, maintain PK hash indexes, BM25 text
//! indexes, and columnar chunks *incrementally*) against the naive reference
//! (`commit_statement_rebuild`: materialize the post-mutation rows and
//! rebuild a fresh database, every index built from scratch). The two share
//! one planning step, so any divergence is necessarily in the incremental
//! maintenance machinery.
//!
//! "Observably identical" is deliberately broad — after every randomized
//! program of interleaved INSERT/UPDATE/DELETE commits the suite compares:
//!
//! * rendered rows of every table (order included);
//! * primary-key hash-index probes for every key ever issued;
//! * the columnar chunk representation, row by row;
//! * BM25 `text_index` search results (doc positions *and* scores — the
//!   incremental append must be state-identical to a fresh build);
//! * query results of a battery in all three plan modes;
//! * the snapshot version epoch and per-table dependency fingerprints.
//!
//! Pinned-snapshot isolation and COW granularity (`Arc::ptr_eq` witnesses)
//! are covered by the `proptest!` properties below the oracle.

use std::sync::Arc;

use proptest::prelude::*;
use seed_sqlengine::{
    commit_statement, commit_statement_rebuild, execute_with_stats_mode, ColumnDef, DataType,
    Database, PlanMode, PreparedStatement, TableSchema, Value,
};

/// Word list for text cells: multi-token documents so BM25 indexes see
/// realistic term-frequency/document-length variation, with shared tokens
/// across words so searches actually rank.
const WORDS: &[&str] = &[
    "apple",
    "banana apple",
    "cherry",
    "delta cherry apple",
    "echo",
    "fox banana",
    "golf echo",
    "hotel echo fox",
    "india",
    "julia fox apple",
];

/// Two-table schema mirroring the columnar props suite: integer PK plus two
/// text columns, so PK probes, BM25 indexes, and chunked scans all engage.
fn fresh_db() -> Database {
    let mut db = Database::new("snap");
    for name in ["t1", "t2"] {
        db.create_table(TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("k", DataType::Text),
                ColumnDef::new("v", DataType::Text),
            ],
        ))
        .unwrap();
    }
    db
}

/// Decodes one program character into a mutation statement. Inserts mint
/// unique primary keys from `next_id`; updates and deletes predicate on ids
/// and words that the insert alphabet actually produces, so non-trivial row
/// sets match. Two opcodes carry subquery predicates (the commit planner
/// runs the full expression executor).
fn decode_op(c: char, step: usize, next_id: &mut i64) -> Option<String> {
    let word = |i: usize| WORDS[i % WORDS.len()];
    let sql = match c {
        '0'..='9' => {
            let d = c as usize - '0' as usize;
            let id = *next_id;
            *next_id += 1;
            format!("INSERT INTO t1 VALUES ({id}, '{}', '{}')", word(d), word(d + 3))
        }
        'u' => format!("UPDATE t1 SET k = v, v = k WHERE id > {}", step as i64 % 8),
        'U' => format!("UPDATE t2 SET v = 'touched {}' WHERE k = '{}'", step, word(step)),
        'm' => format!("UPDATE t1 SET v = k || ' more' WHERE v = '{}'", word(step + 3)),
        'd' => format!("DELETE FROM t1 WHERE id = {}", step as i64),
        'D' => format!("DELETE FROM t2 WHERE k = '{}'", word(step + 1)),
        // After the specific opcodes: 'd' is a delete, so t2 inserts use the
        // remaining letters of the range.
        'a'..='f' => {
            let d = c as usize - 'a' as usize;
            let id = *next_id;
            *next_id += 1;
            format!("INSERT INTO t2 VALUES ({id}, '{}', '{}')", word(d), word(d + 5))
        }
        'w' => "UPDATE t1 SET v = 'linked' WHERE id IN (SELECT id FROM t2)".to_string(),
        'W' => "DELETE FROM t2 WHERE EXISTS (SELECT 1 FROM t1 WHERE t1.id = t2.id)".to_string(),
        _ => return None,
    };
    Some(sql)
}

fn rendered(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter().map(|r| r.iter().map(Value::render).collect()).collect()
}

/// Read-query battery run against both databases in all three plan modes at
/// the end of every oracle case.
const QUERIES: &[&str] = &[
    "SELECT id, k, v FROM t1",
    "SELECT a.id, b.id, a.v FROM t1 AS a INNER JOIN t2 AS b ON a.k = b.k",
    "SELECT k, COUNT(*) FROM t1 GROUP BY k ORDER BY 2 DESC, 1",
    "SELECT id FROM t2 WHERE EXISTS (SELECT 1 FROM t1 WHERE t1.k = t2.k)",
];

/// The full observable-identity check between the incrementally maintained
/// database and the rebuilt reference.
fn assert_observably_identical(inc: &Database, reb: &Database, ids_issued: i64, ctx: &str) {
    assert_eq!(inc.version(), reb.version(), "version epoch diverged: {ctx}");
    assert_eq!(inc.table_names(), reb.table_names(), "table set diverged: {ctx}");
    for name in inc.table_names() {
        let (ti, tr) = (inc.table(&name).unwrap(), reb.table(&name).unwrap());
        // Rows, order included.
        assert_eq!(rendered(ti.rows()), rendered(tr.rows()), "rows diverged in {name}: {ctx}");
        // PK hash index: probe every id ever minted (hits *and* misses).
        for id in 0..ids_issued {
            let key = Value::Integer(id);
            let pi = ti.pk_lookup(&key).map(|h| h.as_slice().to_vec());
            let pr = tr.pk_lookup(&key).map(|h| h.as_slice().to_vec());
            assert_eq!(pi, pr, "pk probe {id} diverged in {name}: {ctx}");
        }
        // Columnar chunks: same chunking, same cells. The incremental path
        // restamps chunks against the post-commit generation, so this also
        // proves no stale chunk survives a commit.
        let (ci, cr) = (ti.columnar_chunks(), tr.columnar_chunks());
        assert_eq!(ci.len(), cr.len(), "chunk count diverged in {name}: {ctx}");
        for (a, b) in ci.iter().zip(&cr) {
            assert_eq!(a.rows(), b.rows(), "chunk rows diverged in {name}: {ctx}");
            for i in 0..a.rows() {
                assert_eq!(
                    rendered(&[a.row(i)]),
                    rendered(&[b.row(i)]),
                    "chunk cell diverged in {name}: {ctx}"
                );
            }
        }
        // BM25: incremental append extension must be state-identical to a
        // fresh build — positions and scores, not just the ranking.
        for col in ["k", "v"] {
            let (bi, br) = (ti.text_index(col).unwrap(), tr.text_index(col).unwrap());
            for q in ["apple", "banana fox", "echo cherry", "touched"] {
                assert_eq!(
                    bi.search(q, 10),
                    br.search(q, 10),
                    "bm25 search {q:?} on {name}.{col} diverged: {ctx}"
                );
            }
        }
    }
    // Fingerprints are the cache keys downstream layers use; equal tables
    // must fingerprint equally or caches would miss spuriously — but only
    // relative to each database's own generation history, so compare
    // reflexively: the sentinel behaviour for unknown tables.
    let unknown = vec!["nope".to_string()];
    assert_eq!(inc.dependency_fingerprint(&unknown), reb.dependency_fingerprint(&unknown));
    // Query battery, three-way per database, then across databases.
    for sql in QUERIES {
        let mut per_db = Vec::new();
        for db in [inc, reb] {
            let mut per_mode = Vec::new();
            for mode in [PlanMode::Columnar, PlanMode::Optimized, PlanMode::NestedLoop] {
                let (rs, _) = execute_with_stats_mode(db, sql, mode)
                    .unwrap_or_else(|e| panic!("{sql} failed ({mode:?}): {e} ({ctx})"));
                per_mode.push((rs.columns.clone(), rendered(&rs.rows)));
            }
            assert_eq!(per_mode[0], per_mode[1], "mode divergence on {sql}: {ctx}");
            assert_eq!(per_mode[1], per_mode[2], "mode divergence on {sql}: {ctx}");
            per_db.push(per_mode.remove(0));
        }
        assert_eq!(per_db[0], per_db[1], "incremental vs rebuild on {sql}: {ctx}");
    }
}

/// Runs one randomized program through both commit paths, checking row
/// identity after every statement and full observable identity at the end.
fn run_oracle_case(program: &str, case: usize) {
    let mut inc = fresh_db();
    let mut reb = fresh_db();
    let mut next_id = 0i64;
    for (step, c) in program.chars().enumerate() {
        let Some(sql) = decode_op(c, step, &mut next_id) else { continue };
        let ctx = format!("case {case} step {step} ({sql}) program {program:?}");
        let oi = commit_statement(&inc, &sql).unwrap_or_else(|e| panic!("inc: {e}: {ctx}"));
        let or = commit_statement_rebuild(&reb, &sql).unwrap_or_else(|e| panic!("reb: {e}: {ctx}"));
        assert_eq!(oi.rows_affected, or.rows_affected, "rows_affected diverged: {ctx}");
        assert_eq!(oi.kind, or.kind);
        assert_eq!(oi.table, or.table);
        assert_eq!(rendered(&oi.result.rows), rendered(&or.result.rows), "result diverged: {ctx}");
        inc = oi.db;
        reb = or.db;
        // Cheap per-step check; the deep one runs once per case.
        for name in ["t1", "t2"] {
            assert_eq!(
                rendered(inc.table(name).unwrap().rows()),
                rendered(reb.table(name).unwrap().rows()),
                "rows diverged in {name}: {ctx}"
            );
        }
    }
    assert_observably_identical(&inc, &reb, next_id, &format!("case {case} ({program:?})"));
}

/// The headline oracle: 1024 randomized interleavings of insert/update/
/// delete commits (including subquery-predicated mutations), incremental
/// maintenance vs full rebuild, observably identical at every step.
///
/// Driven by the proptest `Runner` directly rather than the `proptest!`
/// macro so the case count is explicit (the acceptance bar is ≥1000 cases)
/// and deterministic.
#[test]
fn incremental_commits_match_rebuild_oracle_on_1024_random_programs() {
    let mut runner = Runner::new("snapshot_cow_oracle");
    for case in 0..1024 {
        let program = runner.gen_string("[0-9a-fuUmdDwW .]{0,20}");
        run_oracle_case(&program, case);
    }
}

/// Degenerate programs the random alphabet reaches rarely: empty, all
/// no-op mutations, delete-everything, and update-everything-twice.
#[test]
fn oracle_holds_on_adversarial_fixed_programs() {
    for (i, program) in [
        "",
        "uuddUUDDwW",
        "012345678 9dddddddddd",
        "abcdefWWWW",
        "0a1b2c3d4e5fuUuUwwmm",
        "999999ddduuu",
    ]
    .iter()
    .enumerate()
    {
        run_oracle_case(program, 10_000 + i);
    }
}

proptest! {
    /// Pinned-snapshot isolation: a reader holding the pre-commit snapshot
    /// sees bit-identical results before and after any number of commits,
    /// while the post-commit snapshot reflects every mutation.
    #[test]
    fn pinned_snapshot_reads_are_immutable_across_commits(s in "[0-9a-fuUmdDwW .]{1,16}") {
        let mut db = fresh_db();
        let mut next_id = 0i64;
        // Seed some rows so the pin has something to show.
        for (step, c) in "0123ab".chars().enumerate() {
            let sql = decode_op(c, step, &mut next_id).unwrap();
            db = commit_statement(&db, &sql).unwrap().db;
        }
        let pin = Arc::new(db.clone());
        let pinned_version = pin.version();
        let before: Vec<_> = QUERIES
            .iter()
            .map(|sql| {
                let (rs, _) = execute_with_stats_mode(&pin, sql, PlanMode::Columnar).unwrap();
                (rs.columns, rendered(&rs.rows))
            })
            .collect();
        // Commit the whole random program against successive snapshots.
        for (step, c) in s.chars().enumerate() {
            let Some(sql) = decode_op(c, step, &mut next_id) else { continue };
            db = commit_statement(&db, &sql).unwrap().db;
        }
        // The pin is frozen: same version, same rows, same query results.
        prop_assert_eq!(pin.version(), pinned_version);
        for (sql, (cols, rows)) in QUERIES.iter().zip(&before) {
            let (rs, _) = execute_with_stats_mode(&pin, sql, PlanMode::Columnar).unwrap();
            prop_assert_eq!(&rs.columns, cols, "pinned headers moved on {}", sql);
            prop_assert_eq!(&rendered(&rs.rows), rows, "pinned rows moved on {}", sql);
        }
    }

    /// COW granularity and cache-key semantics per commit: the touched
    /// table is a fresh `Arc` with a flipped dependency fingerprint; every
    /// untouched table stays pointer-shared with an unchanged fingerprint
    /// (so version-keyed cache entries for untouched tables keep hitting
    /// across snapshots, while touched-table entries miss).
    #[test]
    fn commits_cow_only_the_touched_table(s in "[0-9a-fuUmdDwW]{1,12}") {
        let mut db = fresh_db();
        let mut next_id = 0i64;
        for (step, c) in "01ab23cd".chars().enumerate() {
            let sql = decode_op(c, step, &mut next_id).unwrap();
            db = commit_statement(&db, &sql).unwrap().db;
        }
        for (step, c) in s.chars().enumerate() {
            let Some(sql) = decode_op(c, step, &mut next_id) else { continue };
            let fp_before: Vec<(String, u64)> = db
                .table_names()
                .into_iter()
                .map(|n| {
                    let fp = db.dependency_fingerprint(std::slice::from_ref(&n));
                    (n, fp)
                })
                .collect();
            let outcome = commit_statement(&db, &sql).unwrap();
            let next = outcome.db;
            prop_assert_eq!(next.version(), db.version() + 1, "every commit bumps the epoch");
            for (name, fp) in fp_before {
                let shared = Arc::ptr_eq(
                    db.table_arc(&name).unwrap(),
                    next.table_arc(&name).unwrap(),
                );
                let fp_after = next.dependency_fingerprint(std::slice::from_ref(&name));
                if name == outcome.table && outcome.rows_affected > 0 {
                    prop_assert!(!shared, "touched table {} must be COW-cloned ({})", name, sql);
                    prop_assert_ne!(
                        fp, fp_after,
                        "touched table {} must flip its fingerprint ({})", name, sql
                    );
                } else {
                    prop_assert!(shared, "untouched table {} must stay shared ({})", name, sql);
                    prop_assert_eq!(
                        fp, fp_after,
                        "untouched table {} must keep its fingerprint ({})", name, sql
                    );
                }
            }
            db = next;
        }
    }

    /// Prepared-statement staleness regression: one prepared statement
    /// (stable AST, cached plans) executed in columnar mode against a
    /// snapshot, then against the post-commit snapshot, must serve fresh
    /// chunks — never panic, never replay the pre-commit table — while the
    /// old pin still answers with its original rows.
    #[test]
    fn prepared_statement_re_snapshots_across_commits(s in "[0-9uUmd]{1,10}") {
        let mut db = fresh_db();
        let mut next_id = 0i64;
        for (step, c) in "0123456789".chars().enumerate() {
            let sql = decode_op(c, step, &mut next_id).unwrap();
            db = commit_statement(&db, &sql).unwrap().db;
        }
        let stmt = PreparedStatement::parse("SELECT id, k, v FROM t1").unwrap();
        let pin = db.clone();
        let (before, _) = stmt.execute(&pin, PlanMode::Columnar).unwrap();
        for (step, c) in s.chars().enumerate() {
            let Some(sql) = decode_op(c, step, &mut next_id) else { continue };
            db = commit_statement(&db, &sql).unwrap().db;
        }
        // Fresh snapshot: the cached statement re-executes against the new
        // chunks (a stale-generation replay would panic or show old rows).
        let (after, _) = stmt.execute(&db, PlanMode::Columnar).unwrap();
        prop_assert_eq!(
            rendered(&after.rows),
            rendered(db.table("t1").unwrap().rows()),
            "prepared statement must see the post-commit table"
        );
        // Old pin: still served, still byte-identical.
        let (pinned, _) = stmt.execute(&pin, PlanMode::Columnar).unwrap();
        prop_assert_eq!(rendered(&pinned.rows), rendered(&before.rows));
    }
}
