//! Differential property tests for the vectorized columnar executor: over
//! randomized schemas populated with NULLs, NaNs, signed zeros, and
//! cross-typed values (numbers stored next to numeric-looking text), every
//! query of a battery covering filters, equi- and residual joins, grouping,
//! HAVING, DISTINCT aggregates, DISTINCT, CASE, and ORDER BY/LIMIT must be
//! row-identical — order included — across all three execution modes:
//! `Columnar` (vectorized), `Optimized` (row-at-a-time, same plans), and
//! `NestedLoop` (the original cross-product oracle).
//!
//! Rows are compared by *rendered* text, not `Value` equality: `PartialEq`
//! for `Value` is `grouping_eq`, under which NaN equals every number and
//! `2` equals `2.0` — too coarse for a differential harness. Rendering
//! distinguishes all of those (`NaN` vs `3.0`, `2` vs `2.0`, `-0.0` vs
//! `0.0`) while remaining total.

use proptest::prelude::*;
use seed_sqlengine::{
    execute_with_stats_mode, ColumnDef, DataType, Database, PlanMode, PreparedStatement,
    TableSchema, Value, BATCH_SIZE,
};

/// Decodes one generator character into a cell. The alphabet deliberately
/// collides classes: integers around zero, reals that `grouping_eq` some of
/// the integers (`2.0`), signed zeros, NaN (inserted directly — it cannot be
/// written as a SQL literal), byte-exact text, and numeric-looking text that
/// compares *numerically* against numbers under `sql_cmp` (`"2"`, `"2.0"`,
/// and even `"nan"`, which parses as a float).
fn decode(c: char) -> Value {
    match c {
        '0'..='9' => Value::Integer(c as i64 - '0' as i64 - 4),
        'n' | 'N' => Value::Null,
        'r' => Value::Real(2.0),
        'R' => Value::Real(-3.5),
        'z' => Value::Real(0.0),
        'Z' => Value::Real(-0.0),
        't' => Value::text("2"),
        'T' => Value::text("2.0"),
        'x' => Value::text("x"),
        'X' => Value::text("X"),
        'q' => Value::Real(f64::NAN),
        'Q' => Value::text("nan"),
        'b' => Value::Integer(i64::MAX),
        'B' => Value::Integer(i64::MAX - 1),
        _ => Value::text(""),
    }
}

/// Two-table database built from the generator string: consecutive character
/// pairs become `(k, v)` rows dealt alternately to `t1` and `t2`, so the
/// tables share a value distribution (join keys actually collide) without
/// being identical.
fn build_db(s: &str) -> Database {
    let mut db = Database::new("prop");
    for name in ["t1", "t2"] {
        db.create_table(TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Integer).primary_key(),
                ColumnDef::new("k", DataType::Text),
                ColumnDef::new("v", DataType::Text),
            ],
        ))
        .unwrap();
    }
    let cells: Vec<Value> = s.chars().map(decode).collect();
    for (i, pair) in cells.chunks_exact(2).enumerate() {
        let table = if i % 2 == 0 { "t1" } else { "t2" };
        db.insert(table, vec![Value::Integer(i as i64), pair[0].clone(), pair[1].clone()]).unwrap();
    }
    db
}

/// The query battery: every shape the columnar pipeline implements natively
/// (scan, batch filters, hash join build/probe, residual ON predicates,
/// LEFT padding, grouped aggregates, DISTINCT, ORDER BY/LIMIT) plus shapes
/// that exercise its row-fallback boundary.
const QUERIES: &[&str] = &[
    "SELECT id, k, v FROM t1",
    "SELECT id, v FROM t1 WHERE v > 0",
    "SELECT id FROM t1 WHERE v = '2' OR k IS NULL",
    "SELECT id FROM t1 WHERE v BETWEEN -2 AND 2",
    "SELECT id FROM t1 WHERE v IN (1, '2', 2.0) AND NOT (k < 0)",
    "SELECT id, k + v, k || v FROM t1 WHERE NOT (v IS NULL)",
    "SELECT a.id, b.id, a.k FROM t1 AS a INNER JOIN t2 AS b ON a.k = b.k",
    "SELECT a.id, b.v FROM t1 AS a LEFT JOIN t2 AS b ON a.k = b.k",
    "SELECT a.id, b.id FROM t1 AS a INNER JOIN t2 AS b ON a.k = b.k AND a.v > b.v",
    "SELECT a.id, b.id FROM t1 AS a LEFT JOIN t2 AS b ON a.k = b.k AND a.v > b.v",
    "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t1 GROUP BY k",
    "SELECT k, COUNT(*) FROM t1 GROUP BY k HAVING COUNT(*) > 1 ORDER BY 2 DESC, 1",
    "SELECT COUNT(DISTINCT v), SUM(DISTINCT v), COUNT(*) FROM t1",
    "SELECT DISTINCT v FROM t1 ORDER BY 1",
    "SELECT v FROM t1 ORDER BY v DESC, id LIMIT 5 OFFSET 1",
    "SELECT k, CASE WHEN v > 0 THEN 'pos' WHEN v = 0 THEN 'zero' ELSE 'other' END FROM t1",
    "SELECT a.k, COUNT(*) FROM t1 AS a INNER JOIN t2 AS b ON a.k = b.k GROUP BY a.k",
    "SELECT id FROM t1 WHERE v > (SELECT AVG(v) FROM t2)",
    "SELECT id FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.k = t1.k)",
];

/// Strict row identity: headers, row count, row order, and the *rendered*
/// form of every cell.
fn rendered(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter().map(|r| r.iter().map(Value::render).collect()).collect()
}

proptest! {
    /// The headline three-way differential property: columnar, optimized,
    /// and nested-loop execution agree on every query of the battery, for
    /// every randomized database.
    #[test]
    fn columnar_matches_row_and_nested_loop(s in "[0-9nNrRzZtTxXqQbB ]{0,64}") {
        let db = build_db(&s);
        for sql in QUERIES {
            let col = execute_with_stats_mode(&db, sql, PlanMode::Columnar);
            let opt = execute_with_stats_mode(&db, sql, PlanMode::Optimized);
            let legacy = execute_with_stats_mode(&db, sql, PlanMode::NestedLoop);
            // Errors (none expected from this battery) must agree too.
            prop_assert_eq!(col.is_ok(), opt.is_ok(), "ok-mismatch on {}", sql);
            prop_assert_eq!(opt.is_ok(), legacy.is_ok(), "ok-mismatch on {}", sql);
            let (Ok((col, _)), Ok((opt, _)), Ok((legacy, _))) = (col, opt, legacy) else {
                continue;
            };
            prop_assert_eq!(&col.columns, &opt.columns, "headers on {}", sql);
            prop_assert_eq!(&col.columns, &legacy.columns, "headers on {}", sql);
            prop_assert_eq!(
                rendered(&col.rows), rendered(&opt.rows),
                "columnar vs optimized on {} over {:?}", sql, s
            );
            prop_assert_eq!(
                rendered(&opt.rows), rendered(&legacy.rows),
                "optimized vs nested-loop on {} over {:?}", sql, s
            );
        }
    }

    /// Columnar stats are deterministic (the VES cost contract extends to
    /// the new mode) and the batch counters actually engage on scans.
    #[test]
    fn columnar_stats_are_deterministic_and_batched(s in "[0-9nNrRzZtTxXqQ ]{2,48}") {
        let db = build_db(&s);
        let sql = "SELECT id, k, v FROM t1 WHERE v > 0";
        let (a, stats_a) = execute_with_stats_mode(&db, sql, PlanMode::Columnar).unwrap();
        let (b, stats_b) = execute_with_stats_mode(&db, sql, PlanMode::Columnar).unwrap();
        prop_assert_eq!(rendered(&a.rows), rendered(&b.rows));
        prop_assert_eq!(&stats_a, &stats_b);
        prop_assert!(stats_a.cost() > 0.0);
        if !db.table("t1").unwrap().rows().is_empty() {
            prop_assert!(stats_a.batches_built >= 1, "scan must produce batches");
            prop_assert_eq!(
                stats_a.batch_rows >= db.table("t1").unwrap().rows().len() as u64,
                true
            );
        }
    }
}

/// Asserts a query renders row-identically (headers, order, cell text)
/// across all three execution modes, returning the columnar result.
fn assert_three_way(db: &Database, sql: &str) -> Vec<Vec<String>> {
    let (col, _) = execute_with_stats_mode(db, sql, PlanMode::Columnar)
        .unwrap_or_else(|e| panic!("columnar failed on {sql}: {e}"));
    let (opt, _) = execute_with_stats_mode(db, sql, PlanMode::Optimized)
        .unwrap_or_else(|e| panic!("optimized failed on {sql}: {e}"));
    let (nl, _) = execute_with_stats_mode(db, sql, PlanMode::NestedLoop)
        .unwrap_or_else(|e| panic!("nested-loop failed on {sql}: {e}"));
    assert_eq!(col.columns, opt.columns, "headers on {sql}");
    assert_eq!(col.columns, nl.columns, "headers on {sql}");
    let (rc, ro, rn) = (rendered(&col.rows), rendered(&opt.rows), rendered(&nl.rows));
    assert_eq!(rc, ro, "columnar vs optimized on {sql}");
    assert_eq!(ro, rn, "optimized vs nested-loop on {sql}");
    rc
}

/// A multi-chunk single table for the selection-vector edge cases: `n` rows
/// where `v` mirrors the row number (a plain column, NOT the primary key, so
/// equality predicates run through the columnar filter rather than the PK
/// index), `r` alternates Real/NULL, and `g` cycles through 7 group keys.
fn boundary_db(n: usize) -> Database {
    let mut db = Database::new("edge");
    db.create_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Integer).primary_key(),
            ColumnDef::new("v", DataType::Integer),
            ColumnDef::new("r", DataType::Real),
            ColumnDef::new("g", DataType::Integer),
        ],
    ))
    .unwrap();
    for i in 0..n {
        let r = if i % 3 == 0 { Value::Null } else { Value::Real(i as f64 / 2.0) };
        db.insert(
            "t",
            vec![
                Value::Integer(i as i64),
                Value::Integer(i as i64),
                r,
                Value::Integer((i % 7) as i64),
            ],
        )
        .unwrap();
    }
    db
}

/// Empty selection: a filter no row survives must yield zero rows in every
/// downstream shape (projection, aggregation with and without GROUP BY).
#[test]
fn selection_vector_empty_selection() {
    let db = boundary_db(2 * BATCH_SIZE + 100);
    assert_eq!(assert_three_way(&db, "SELECT id, v FROM t WHERE v < 0"), Vec::<Vec<String>>::new());
    assert_eq!(assert_three_way(&db, "SELECT g, COUNT(*) FROM t WHERE v < 0 GROUP BY g").len(), 0);
    // Ungrouped aggregate over an empty selection still produces its one row.
    let rows = assert_three_way(&db, "SELECT COUNT(*), SUM(v), MIN(r) FROM t WHERE v < 0");
    assert_eq!(rows, vec![vec!["0".to_string(), "NULL".to_string(), "NULL".to_string()]]);
}

/// All-rows selection: a tautological (but not constant-foldable) predicate
/// keeps every row, exercising the all-live fast path end to end.
#[test]
fn selection_vector_all_rows_selection() {
    let db = boundary_db(2 * BATCH_SIZE + 100);
    let rows = assert_three_way(&db, "SELECT id FROM t WHERE v >= 0");
    assert_eq!(rows.len(), 2 * BATCH_SIZE + 100);
    let rows = assert_three_way(&db, "SELECT g, COUNT(*), SUM(v) FROM t WHERE v >= 0 GROUP BY g");
    assert_eq!(rows.len(), 7);
}

/// A single surviving row straddling the chunk boundary: positions
/// `BATCH_SIZE - 1`, `BATCH_SIZE`, and `BATCH_SIZE + 1` (1023/1024/1025 as
/// row numbers 1024/1025/1026) each survive alone, through both the bare
/// projection and a grouped aggregate.
#[test]
fn selection_vector_single_survivor_at_chunk_boundary() {
    let db = boundary_db(2 * BATCH_SIZE + 100);
    for target in [BATCH_SIZE - 1, BATCH_SIZE, BATCH_SIZE + 1] {
        let sql = format!("SELECT id, v, g FROM t WHERE v = {target}");
        let rows = assert_three_way(&db, &sql);
        assert_eq!(rows.len(), 1, "exactly one survivor for {sql}");
        assert_eq!(rows[0][0], target.to_string());
        let sql =
            format!("SELECT g, COUNT(*), SUM(v), AVG(r) FROM t WHERE v = {target} GROUP BY g");
        assert_eq!(assert_three_way(&db, &sql).len(), 1);
    }
}

/// Wide aggregate lists: at least four aggregates per query over mixed
/// Int/Real/NULL columns, with conjunctive filters in front so the grouped
/// pipeline consumes a refined selection.
#[test]
fn wide_aggregate_lists_over_mixed_columns() {
    let db = boundary_db(2 * BATCH_SIZE + 100);
    for sql in [
        "SELECT g, COUNT(*), COUNT(r), SUM(v), SUM(r), AVG(r), MIN(r), MAX(v) FROM t GROUP BY g \
         ORDER BY g",
        "SELECT g, SUM(v), AVG(v), MIN(v), MAX(r), COUNT(DISTINCT r) FROM t \
         WHERE v >= 10 AND v < 2000 GROUP BY g HAVING COUNT(*) > 2 ORDER BY g",
        "SELECT COUNT(*), COUNT(r), SUM(r), AVG(r), MIN(v), MAX(r) FROM t WHERE g <> 3",
    ] {
        assert_three_way(&db, sql);
    }
}

/// The snapshot-invalidation contract from the executor's point of view: one
/// prepared statement (stable AST address, cached plans), executed in
/// columnar mode, must observe rows inserted between two executions.
#[test]
fn prepared_statement_sees_mutation_between_executions() {
    let mut db = boundary_db(BATCH_SIZE + 5);
    let stmt = PreparedStatement::parse("SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g")
        .unwrap();
    let (before, _) = stmt.execute(&db, PlanMode::Columnar).unwrap();
    for i in 0..10 {
        let id = (BATCH_SIZE + 5 + i) as i64;
        db.insert("t", vec![id.into(), id.into(), Value::Real(id as f64), (id % 7).into()])
            .unwrap();
    }
    let (after, _) = stmt.execute(&db, PlanMode::Columnar).unwrap();
    assert_ne!(
        rendered(&before.rows),
        rendered(&after.rows),
        "second execution must see the inserted rows, not a stale snapshot"
    );
    // And the refreshed result still matches the row-path authority.
    let (opt, _) = stmt.execute(&db, PlanMode::Optimized).unwrap();
    assert_eq!(rendered(&after.rows), rendered(&opt.rows));
}
